//! The library façade: one builder for a whole verification run, and
//! batch sessions that amortise engine state across many runs.
//!
//! A [`Session`] owns a protocol spec and the engine options, and
//! produces a [`VerificationReport`] — the
//! same result type the CLI renders and the crosscheck annotates.
//!
//! ```
//! use ccv_core::Session;
//! use ccv_model::protocols::illinois;
//!
//! let report = Session::new(illinois()).verify();
//! assert_eq!(report.num_essential(), 5);
//! ```
//!
//! A [`Batch`] holds one [`EngineScratch`] — successor buffers, the
//! containment index, a recycled composite arena — and threads it
//! through any number of verification runs, so sweeps over whole
//! protocol libraries (the CLI's `check-all`, the mutation sweep, the
//! DSL suite) expand without steady-state allocation:
//!
//! ```
//! use ccv_core::{Batch, Verdict};
//! use ccv_model::protocols;
//!
//! let mut batch = Batch::new();
//! let reports = batch.verify_many(&protocols::all_correct());
//! assert!(reports.iter().all(|r| r.verdict == Verdict::Verified));
//! ```
//!
//! Callers that only need verdicts and counts use
//! [`Batch::summarize`], which additionally recycles the run's arena
//! storage into the scratch pool. The [`Verifier`] trait abstracts
//! over both entry styles so command implementations and test
//! harnesses take "anything that can verify a protocol".

use std::sync::Arc;

use crate::composite::Composite;
use crate::engine::{expand_with, EngineScratch, Options};
use crate::verify::{verify_with, verify_with_scratch, Verdict, VerificationReport};
use ccv_model::ProtocolSpec;
use ccv_observe::{EventSink, SinkHandle, StopInfo};

/// A configured verification run over one protocol.
#[derive(Clone, Debug)]
pub struct Session {
    spec: ProtocolSpec,
    opts: Options,
}

impl Session {
    /// A session over `spec` with default options.
    pub fn new(spec: ProtocolSpec) -> Session {
        Session {
            spec,
            opts: Options::default(),
        }
    }

    /// Replaces the engine options wholesale.
    pub fn options(mut self, opts: Options) -> Session {
        self.opts = opts;
        self
    }

    /// Attaches an observability sink (e.g. a
    /// [`Metrics`](ccv_observe::Metrics) collector) to the run.
    pub fn sink(mut self, sink: Arc<dyn EventSink>) -> Session {
        self.opts.common.sink = SinkHandle::new(sink);
        self
    }

    /// The protocol under verification.
    pub fn spec(&self) -> &ProtocolSpec {
        &self.spec
    }

    /// The effective engine options.
    pub fn effective_options(&self) -> &Options {
        &self.opts
    }

    /// Runs the symbolic verification and returns the report.
    pub fn verify(&self) -> VerificationReport {
        verify_with(&self.spec, &self.opts)
    }

    /// Converts the session into a [`Batch`] carrying its options, for
    /// verifying further protocols with shared engine state.
    pub fn into_batch(self) -> Batch {
        Batch::with_options(self.opts)
    }

    /// Runs one unified-API request with default runtime context (a
    /// fresh cancellation token, no sink). The one-shot counterpart of
    /// [`crate::api::SessionRunner`]; see [`Session::run_with`] to
    /// attach a token and a sink.
    pub fn run(req: &crate::api::Request) -> crate::api::Response {
        Session::run_with(req, &crate::api::RunContext::default())
    }

    /// Runs one unified-API request under an explicit
    /// [`RunContext`](crate::api::RunContext) — the entry point the
    /// CLI subcommands and `ccv serve` share.
    pub fn run_with(
        req: &crate::api::Request,
        ctx: &crate::api::RunContext,
    ) -> crate::api::Response {
        crate::api::SessionRunner::new().run(req, ctx)
    }
}

/// Verdict-level result of a summary-only batch run: what a library
/// sweep needs, without the graph, the error renderings or the arena.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RunSummary {
    /// Name of the verified protocol.
    pub protocol: String,
    /// The verdict.
    pub verdict: Verdict,
    /// Number of essential states at fixpoint.
    pub essential: usize,
    /// Rule firings during expansion.
    pub visits: usize,
    /// Why the run stopped early, when the verdict is
    /// [`Verdict::Inconclusive`] (`None` for completed runs).
    pub stopped: Option<StopInfo>,
}

/// A batch verification session: engine options plus one
/// [`EngineScratch`] reused across every run.
///
/// Verifying through a batch is observably identical to fresh
/// [`Session`] runs — scratch reuse only recycles allocations.
#[derive(Debug, Default)]
pub struct Batch {
    opts: Options,
    scratch: EngineScratch,
}

impl Batch {
    /// A batch with default engine options.
    pub fn new() -> Batch {
        Batch::default()
    }

    /// A batch carrying explicit engine options.
    pub fn with_options(opts: Options) -> Batch {
        Batch {
            opts,
            scratch: EngineScratch::new(),
        }
    }

    /// The engine options applied to every run.
    pub fn effective_options(&self) -> &Options {
        &self.opts
    }

    /// Verifies one protocol through the shared scratch, returning the
    /// full report.
    pub fn verify(&mut self, spec: &ProtocolSpec) -> VerificationReport {
        verify_with_scratch(spec, &self.opts, &mut self.scratch)
    }

    /// Verifies every protocol in `specs`, in order, reusing the
    /// shared scratch between runs.
    pub fn verify_many<'s>(
        &mut self,
        specs: impl IntoIterator<Item = &'s ProtocolSpec>,
    ) -> Vec<VerificationReport> {
        specs.into_iter().map(|s| self.verify(s)).collect()
    }

    /// Expands one protocol and reduces the outcome to a
    /// [`RunSummary`], recycling the run's arena storage into the
    /// scratch pool. The cheapest way to sweep a protocol library for
    /// verdicts: no global graph is built and nothing survives the
    /// call but the summary.
    pub fn summarize(&mut self, spec: &ProtocolSpec) -> RunSummary {
        let expansion = expand_with(
            spec,
            Composite::initial(spec),
            &self.opts,
            &mut self.scratch,
        );
        let verdict = crate::verify::Outcome::of_expansion(&expansion).verdict();
        let summary = RunSummary {
            protocol: spec.name().to_string(),
            verdict,
            essential: expansion.essential.len(),
            visits: expansion.visits,
            stopped: expansion.stopped.clone(),
        };
        self.scratch.recycle(expansion);
        summary
    }
}

/// Anything that can verify a protocol and produce the standard
/// report — implemented by [`Session`] (fresh engine state per run)
/// and [`Batch`] (shared scratch). Command implementations, the
/// crosscheck driver and the test harnesses are written against this
/// trait so the two styles interchange freely.
pub trait Verifier {
    /// Verifies `spec` and returns the full report.
    fn verify_protocol(&mut self, spec: &ProtocolSpec) -> VerificationReport;
}

impl Verifier for Session {
    fn verify_protocol(&mut self, spec: &ProtocolSpec) -> VerificationReport {
        verify_with(spec, &self.opts)
    }
}

impl Verifier for Batch {
    fn verify_protocol(&mut self, spec: &ProtocolSpec) -> VerificationReport {
        self.verify(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::Verdict;
    use ccv_model::protocols::{all_buggy, all_correct, illinois, illinois_missing_invalidation};
    use ccv_observe::{Counter, Gauge, Metrics, Phase};

    #[test]
    fn session_defaults_match_verify() {
        let report = Session::new(illinois()).verify();
        assert_eq!(report.verdict, Verdict::Verified);
        assert_eq!(report.num_essential(), 5);
        assert_eq!(report.visits(), 22);
        assert!(report.crosscheck.is_none());
    }

    #[test]
    fn session_threads_sink_through_the_run() {
        let metrics = Arc::new(Metrics::new());
        let report = Session::new(illinois()).sink(metrics.clone()).verify();
        assert_eq!(report.verdict, Verdict::Verified);

        let snap = metrics.snapshot();
        assert_eq!(snap.counter(Counter::Visits), 22);
        assert_eq!(snap.gauge(Gauge::EssentialStates), Some(5));
        assert!(snap.counter(Counter::Expansions) > 0);
        assert!(snap.counter(Counter::ContainmentChecks) > 0);
        // Every verification phase was timed (>= 0 is trivially true,
        // so assert the enter/exit pairs actually closed: the phase
        // list in the export is driven by non-zero wall time, which a
        // sub-microsecond phase may round to — check Expand at least).
        assert!(snap.phase_nanos(Phase::Expand) > 0);
    }

    #[test]
    fn session_reports_errors_with_options() {
        let report = Session::new(illinois_missing_invalidation())
            .options(Options::default().stop_at_first_error(true))
            .verify();
        assert_eq!(report.verdict, Verdict::Erroneous);
        assert_eq!(report.reports.len(), 1);
    }

    #[test]
    fn batch_matches_fresh_sessions_across_the_library() {
        let mut batch = Batch::new();
        for spec in all_correct() {
            let fresh = Session::new(spec.clone()).verify();
            let batched = batch.verify(&spec);
            assert_eq!(batched.verdict, fresh.verdict, "{}", spec.name());
            assert_eq!(batched.visits(), fresh.visits(), "{}", spec.name());
            assert_eq!(
                batched.num_essential(),
                fresh.num_essential(),
                "{}",
                spec.name()
            );
        }
    }

    #[test]
    fn batch_verify_many_preserves_order_and_verdicts() {
        let specs = all_correct();
        let reports = Batch::new().verify_many(&specs);
        assert_eq!(reports.len(), specs.len());
        for (spec, report) in specs.iter().zip(&reports) {
            assert_eq!(report.protocol, spec.name());
            assert_eq!(report.verdict, Verdict::Verified);
        }
    }

    #[test]
    fn summarize_agrees_with_full_reports_and_recycles() {
        let mut batch = Batch::new();
        for spec in all_correct() {
            let summary = batch.summarize(&spec);
            let full = Session::new(spec.clone()).verify();
            assert_eq!(summary.verdict, full.verdict, "{}", spec.name());
            assert_eq!(summary.visits, full.visits(), "{}", spec.name());
            assert_eq!(summary.essential, full.num_essential(), "{}", spec.name());
        }
        for (spec, _) in all_buggy() {
            assert_eq!(batch.summarize(&spec).verdict, Verdict::Erroneous);
        }
    }

    #[test]
    fn verifier_trait_interchanges_session_and_batch() {
        fn run(v: &mut dyn Verifier, spec: &ProtocolSpec) -> Verdict {
            v.verify_protocol(spec).verdict
        }
        let spec = illinois();
        let mut session = Session::new(spec.clone());
        let mut batch = Session::new(spec.clone()).into_batch();
        assert_eq!(run(&mut session, &spec), Verdict::Verified);
        assert_eq!(run(&mut batch, &spec), Verdict::Verified);
    }
}
