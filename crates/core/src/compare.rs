//! Comparing protocols through their global transition diagrams.
//!
//! The paper (§1.0, §5.0) notes that the global state graph "is useful
//! not only to verify data consistency but also to demonstrate the
//! similarities and disparities among protocols". This module makes
//! that comparison mechanical: essential states of different protocols
//! are mapped to protocol-independent **signatures** built from the
//! semantic attributes of their classes (invalid / clean-shared /
//! clean-exclusive / owned-shared / owned-exclusive), and the two
//! diagrams are diffed on signatures — states and labelled transitions
//! present in one protocol's behaviour but not the other's.
//!
//! Example: MSI and Synapse have *identical* behavioural skeletons
//! (their disparities are data-path only: who supplies, who flushes),
//! while Dragon's diagram contains owned-shared states Illinois can
//! never inhabit.

use crate::composite::Composite;
use crate::engine::{expand_with, EngineScratch, Options};
use crate::expand::Label;
use crate::graph::global_graph;
use ccv_model::{CData, ProcEvent, ProtocolSpec, StateAttrs, StateId};

/// Protocol-independent role of a cache state, derived from its
/// attributes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Role {
    /// No copy.
    Invalid,
    /// Clean copy, possibly replicated.
    CleanShared,
    /// Clean copy, sole cached copy.
    CleanExclusive,
    /// Owned copy coexisting with other copies.
    OwnedShared,
    /// Owned copy, sole cached copy.
    OwnedExclusive,
}

impl Role {
    /// Derives the role from state attributes.
    pub fn of(attrs: StateAttrs) -> Role {
        match (attrs.holds_copy, attrs.owned, attrs.exclusive) {
            (false, _, _) => Role::Invalid,
            (true, false, false) => Role::CleanShared,
            (true, false, true) => Role::CleanExclusive,
            (true, true, false) => Role::OwnedShared,
            (true, true, true) => Role::OwnedExclusive,
        }
    }

    /// Compact label used in signatures.
    pub fn tag(self) -> &'static str {
        match self {
            Role::Invalid => "I",
            Role::CleanShared => "C",
            Role::CleanExclusive => "CX",
            Role::OwnedShared => "O",
            Role::OwnedExclusive => "OX",
        }
    }
}

fn role_of_state(spec: &ProtocolSpec, s: StateId) -> Role {
    Role::of(spec.attrs(s))
}

/// Protocol-independent signature of a composite state: the sorted
/// multiset of `(role, staleness, operator)` classes plus the
/// characteristic value and memory freshness.
pub fn state_signature(spec: &ProtocolSpec, comp: &Composite) -> String {
    let mut parts: Vec<String> = comp
        .classes()
        .iter()
        .map(|&(k, r)| {
            let stale = if k.cdata == CData::Obsolete { "!" } else { "" };
            format!(
                "{}{}{}",
                role_of_state(spec, k.state).tag(),
                stale,
                r.superscript()
            )
        })
        .collect();
    parts.sort();
    format!("({}) f={} m={}", parts.join(","), comp.f, comp.mdata)
}

/// Protocol-independent signature of a transition label: the event
/// plus the role of the originating class.
pub fn label_signature(spec: &ProtocolSpec, label: &Label) -> String {
    let e = match label.event {
        ProcEvent::Read => "R",
        ProcEvent::Write => "W",
        ProcEvent::Replace => "Z",
        ProcEvent::Complete => "C",
    };
    format!("{}_{}", e, role_of_state(spec, label.origin.state).tag())
}

/// The behavioural diff of two protocols.
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Name of the first protocol.
    pub a: String,
    /// Name of the second protocol.
    pub b: String,
    /// State signatures present in both diagrams.
    pub common_states: Vec<String>,
    /// `(rendered state, signature)` present only in `a`.
    pub only_a: Vec<(String, String)>,
    /// `(rendered state, signature)` present only in `b`.
    pub only_b: Vec<(String, String)>,
    /// Edge signatures (`from --label--> to`) present in both.
    pub common_edges: Vec<String>,
    /// Edge signatures present only in `a`.
    pub edges_only_a: Vec<String>,
    /// Edge signatures present only in `b`.
    pub edges_only_b: Vec<String>,
}

impl DiffReport {
    /// True iff the two protocols have the same behavioural skeleton
    /// (identical state- and edge-signature sets).
    pub fn skeletons_identical(&self) -> bool {
        self.only_a.is_empty()
            && self.only_b.is_empty()
            && self.edges_only_a.is_empty()
            && self.edges_only_b.is_empty()
    }

    /// Human-readable rendering.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "comparing {} vs {}", self.a, self.b);
        let _ = writeln!(
            out,
            "  common: {} states, {} edges",
            self.common_states.len(),
            self.common_edges.len()
        );
        if self.skeletons_identical() {
            let _ = writeln!(out, "  behavioural skeletons are IDENTICAL");
            return out;
        }
        for (title, items) in [
            (format!("states only in {}", self.a), &self.only_a),
            (format!("states only in {}", self.b), &self.only_b),
        ] {
            if !items.is_empty() {
                let _ = writeln!(out, "  {title}:");
                for (render, sig) in items {
                    let _ = writeln!(out, "    {render}   [{sig}]");
                }
            }
        }
        for (title, items) in [
            (format!("edges only in {}", self.a), &self.edges_only_a),
            (format!("edges only in {}", self.b), &self.edges_only_b),
        ] {
            if !items.is_empty() {
                let _ = writeln!(out, "  {title}:");
                for e in items {
                    let _ = writeln!(out, "    {e}");
                }
            }
        }
        out
    }
}

/// Builds the signature sets of one protocol's global diagram. The
/// two diagrams of a comparison share one engine scratch.
fn diagram_signatures(
    spec: &ProtocolSpec,
    scratch: &mut EngineScratch,
) -> (Vec<(String, String)>, Vec<String>) {
    let expansion = expand_with(spec, Composite::initial(spec), &Options::default(), scratch);
    let graph = global_graph(spec, &expansion);
    let states: Vec<(String, String)> = graph
        .states
        .iter()
        .map(|c| (c.render(spec), state_signature(spec, c)))
        .collect();
    // Edge signatures use the raw successors so labels keep their
    // origin class (the graph stores rendered labels).
    let mut edges: Vec<String> = Vec::new();
    for s in &graph.states {
        let from_sig = state_signature(spec, s);
        for t in crate::expand::successors(spec, s) {
            let Some(to) = graph.states.iter().find(|e| t.to.contained_in(e)) else {
                continue;
            };
            let sig = format!(
                "{} --{}--> {}",
                from_sig,
                label_signature(spec, &t.label),
                state_signature(spec, to)
            );
            if !edges.contains(&sig) {
                edges.push(sig);
            }
        }
    }
    // The expansion itself is no longer needed: return its arena to
    // the scratch pool for the next diagram.
    scratch.recycle(expansion);
    (states, edges)
}

/// Compares two protocols through their verified global diagrams.
///
/// ```
/// use ccv_core::compare_protocols;
/// use ccv_model::protocols;
///
/// // MSI and Synapse differ only in the data path (who supplies,
/// // who flushes) — their behavioural skeletons coincide.
/// let d = compare_protocols(&protocols::msi(), &protocols::synapse());
/// assert!(d.skeletons_identical());
///
/// // Dragon reaches owned-shared configurations Illinois cannot.
/// let d = compare_protocols(&protocols::dragon(), &protocols::illinois());
/// assert!(!d.skeletons_identical());
/// ```
pub fn compare_protocols(a: &ProtocolSpec, b: &ProtocolSpec) -> DiffReport {
    let mut scratch = EngineScratch::new();
    let (states_a, edges_a) = diagram_signatures(a, &mut scratch);
    let (states_b, edges_b) = diagram_signatures(b, &mut scratch);

    let sigs_a: Vec<&String> = states_a.iter().map(|(_, s)| s).collect();
    let sigs_b: Vec<&String> = states_b.iter().map(|(_, s)| s).collect();

    let common_states: Vec<String> = sigs_a
        .iter()
        .filter(|s| sigs_b.contains(s))
        .map(|s| (*s).clone())
        .collect();
    let only_a = states_a
        .iter()
        .filter(|(_, s)| !sigs_b.contains(&s))
        .cloned()
        .collect();
    let only_b = states_b
        .iter()
        .filter(|(_, s)| !sigs_a.contains(&s))
        .cloned()
        .collect();

    let common_edges: Vec<String> = edges_a
        .iter()
        .filter(|e| edges_b.contains(e))
        .cloned()
        .collect();
    let edges_only_a = edges_a
        .iter()
        .filter(|e| !edges_b.contains(e))
        .cloned()
        .collect();
    let edges_only_b = edges_b
        .iter()
        .filter(|e| !edges_a.contains(e))
        .cloned()
        .collect();

    DiffReport {
        a: a.name().to_string(),
        b: b.name().to_string(),
        common_states,
        only_a,
        only_b,
        common_edges,
        edges_only_a,
        edges_only_b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::protocols;

    #[test]
    fn roles_cover_the_attribute_space() {
        assert_eq!(Role::of(StateAttrs::INVALID), Role::Invalid);
        assert_eq!(Role::of(StateAttrs::SHARED_CLEAN), Role::CleanShared);
        assert_eq!(Role::of(StateAttrs::VALID_EXCLUSIVE), Role::CleanExclusive);
        assert_eq!(Role::of(StateAttrs::OWNED_SHARED), Role::OwnedShared);
        assert_eq!(Role::of(StateAttrs::DIRTY), Role::OwnedExclusive);
    }

    #[test]
    fn protocol_compared_to_itself_is_identical() {
        for spec in [protocols::msi(), protocols::dragon()] {
            let d = compare_protocols(&spec, &spec);
            assert!(d.skeletons_identical(), "{}", spec.name());
            assert!(!d.common_states.is_empty());
        }
    }

    #[test]
    fn msi_and_synapse_share_a_skeleton() {
        // Both are 3-state invalidate protocols; their disparities are
        // pure data path (Synapse has no cache-to-cache supply), which
        // signatures deliberately ignore.
        let d = compare_protocols(&protocols::msi(), &protocols::synapse());
        assert!(
            d.skeletons_identical(),
            "unexpected differences: {}",
            d.render()
        );
    }

    #[test]
    fn illinois_differs_from_msi_by_the_exclusive_state() {
        let d = compare_protocols(&protocols::illinois(), &protocols::msi());
        assert!(!d.skeletons_identical());
        assert!(
            d.only_a.iter().any(|(_, sig)| sig.contains("CX")),
            "Illinois's extra states involve the clean-exclusive role: {}",
            d.render()
        );
        assert!(d.only_b.is_empty() || !d.only_b.iter().any(|(_, s)| s.contains("CX")));
    }

    #[test]
    fn dragon_has_owned_shared_states_illinois_lacks() {
        let d = compare_protocols(&protocols::dragon(), &protocols::illinois());
        assert!(d
            .only_a
            .iter()
            .any(|(_, sig)| sig.contains("O") && !sig.contains("OX")));
    }

    #[test]
    fn render_mentions_both_protocols() {
        let d = compare_protocols(&protocols::msi(), &protocols::illinois());
        let text = d.render();
        assert!(text.contains("MSI"));
        assert!(text.contains("Illinois"));
    }
}
