//! The essential-states worklist engine (Figure 3 of the paper).
//!
//! Maintains a working list `W` of unexpanded composite states and a
//! history `H` of expanded ones. Each popped state is expanded through
//! [`crate::expand::successors_into`]; a successor contained in a
//! surviving state (Definition 9) is discarded, and surviving states
//! contained in a new successor are pruned — justified by the
//! monotonicity of the expansion operator (Lemmas 1–2, Corollaries
//! 1–2). At fixpoint the surviving states are the **essential states**
//! (Definition 10), which symbolically characterise the entire
//! reachable state space (Theorem 1).
//!
//! Differences from the paper's pseudo-code, none affecting the result:
//!
//! * the current state `A` keeps expanding even if a successor turns
//!   out to contain it (the paper restarts; by monotonicity the extra
//!   successors are redundant but harmless, and the bookkeeping is
//!   simpler);
//! * every discovered state lives in an append-only arena with parent
//!   links, so that error reports carry a concrete counterexample path
//!   even when intermediate states were later pruned.
//!
//! Composite states are hash-consed in a [`CompositeArena`]; nodes,
//! trace entries and the containment machinery move copyable
//! [`CompositeId`]s. Both containment directions go through the
//! [`ContainmentIndex`], which buckets live nodes by `(FVal, MData)`
//! and prefilters by class-support signature — bit-identical to the
//! former linear scans (see `index.rs` for the argument) but probing
//! only structurally comparable candidates. Scratch buffers
//! ([`EngineScratch`]) persist across runs, so batch workloads expand
//! without steady-state allocation.
//!
//! The engine also supports **equality pruning** (discard only exact
//! duplicates) as an ablation mode: it corresponds to running the
//! symbolic representation with the counting equivalence of
//! Definition 5 alone, and demonstrates what containment pruning buys.
//! Under interning, equality pruning is an id lookup in the intern
//! table.

use crate::check::{check, Violation};
use crate::composite::Composite;
use crate::expand::{successors_into, ExpandScratch, Label, StepError, Transition};
use crate::index::ContainmentIndex;
use crate::intern::{CompositeArena, CompositeId};
use ccv_model::ProtocolSpec;
use ccv_observe::{
    CommonOptions, Counter, Gauge, Governor, Phase, RuleStat, SinkHandle, SpanKind, StopCause,
    StopInfo, Track,
};
use std::collections::VecDeque;
use std::time::Instant;

/// Pruning discipline for the worklist.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Pruning {
    /// Containment pruning (Definition 9 / Figure 3) — the paper's
    /// method.
    #[default]
    Containment,
    /// Exact-duplicate pruning only — the ablation baseline.
    Equality,
}

/// Engine options.
///
/// `#[non_exhaustive]`: construct with [`Options::default`] and refine
/// with the builder methods. Settings shared with the other engines
/// (work budget, stop-at-first-error, observability sink) live in the
/// embedded [`CommonOptions`]; for the symbolic engine the budget caps
/// generated successors ("visits") as a divergence backstop.
#[non_exhaustive]
#[derive(Clone, Debug)]
pub struct Options {
    /// Settings shared by every engine (budget = max visits here).
    pub common: CommonOptions,
    /// Pruning discipline.
    pub pruning: Pruning,
    /// Record a [`VisitRecord`] for every generated successor
    /// (Appendix A.2 reproduction).
    pub record_trace: bool,
    /// Expansion worker threads: 1 (the default) runs the sequential
    /// loop, 0 resolves to one worker per available core, and any other
    /// value forks that many workers per batch. Output is bit-identical
    /// for every setting (see the module docs of the parallel driver).
    pub threads: usize,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            common: CommonOptions::default().budget(1_000_000),
            pruning: Pruning::Containment,
            record_trace: false,
            threads: 1,
        }
    }
}

impl Options {
    /// Sets the pruning discipline.
    pub fn pruning(mut self, pruning: Pruning) -> Options {
        self.pruning = pruning;
        self
    }

    /// Caps the number of generated successors.
    pub fn max_visits(mut self, max_visits: usize) -> Options {
        self.common.budget = max_visits;
        self
    }

    /// Stops as soon as the first erroneous state is found.
    pub fn stop_at_first_error(mut self, stop: bool) -> Options {
        self.common.stop_at_first_error = stop;
        self
    }

    /// Records a [`VisitRecord`] per generated successor.
    pub fn record_trace(mut self, record: bool) -> Options {
        self.record_trace = record;
        self
    }

    /// Sets the expansion worker count (0 = one per available core,
    /// 1 = sequential).
    pub fn threads(mut self, threads: usize) -> Options {
        self.threads = threads;
        self
    }

    /// Attaches an observability sink.
    pub fn sink(mut self, sink: impl Into<ccv_observe::SinkHandle>) -> Options {
        self.common.sink = sink.into();
        self
    }

    /// Attributes firings, produced states and scan time to protocol
    /// rules (ignored while no sink is attached).
    pub fn rule_stats(mut self, on: bool) -> Options {
        self.common.rule_stats = on;
        self
    }

    /// Stops the run once this much wall-clock time has elapsed.
    pub fn deadline(mut self, deadline: std::time::Duration) -> Options {
        self.common.deadline = Some(deadline);
        self
    }

    /// Stops the run once the arena plus visited index exceed roughly
    /// this many bytes.
    pub fn max_bytes(mut self, max_bytes: u64) -> Options {
        self.common.max_bytes = Some(max_bytes);
        self
    }

    /// Uses `cancel` as the run's cooperative cancellation token.
    pub fn cancel(mut self, cancel: ccv_observe::CancelToken) -> Options {
        self.common.cancel = cancel;
        self
    }

    /// Replaces the embedded common settings wholesale.
    pub fn common(mut self, common: CommonOptions) -> Options {
        self.common = common;
        self
    }
}

/// Index of a discovered state in the expansion arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub usize);

/// A discovered composite state with provenance.
#[derive(Clone, Debug)]
pub struct Node {
    /// The canonical state, interned in the expansion's
    /// [`CompositeArena`] (resolve with [`Expansion::composite`]).
    pub state: CompositeId,
    /// How the state was first reached (`None` for the initial state).
    pub parent: Option<(NodeId, Label)>,
    /// State-level violations (structural contradictions, readable
    /// stale copies).
    pub violations: Vec<Violation>,
    /// Whether containment pruning later displaced this state.
    pub pruned: bool,
}

/// How a generated successor was treated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Disposition {
    /// A new state, added to the working list.
    New,
    /// Contained in (or equal to) an already-known surviving state.
    Contained,
}

/// One entry of the expansion trace (Appendix A.2 reproduction).
#[derive(Clone, Debug)]
pub struct VisitRecord {
    /// Source state.
    pub from: Composite,
    /// Transition taken.
    pub label: Label,
    /// Generated successor (canonical).
    pub to: Composite,
    /// Whether the successor was new or discarded.
    pub disposition: Disposition,
}

/// An erroneous state or transition discovered during expansion.
#[derive(Clone, Debug)]
pub struct ErrorFinding {
    /// Arena node of the erroneous state.
    pub node: NodeId,
    /// State-level violations of the node.
    pub violations: Vec<Violation>,
    /// Transition-level stale accesses observed on the step *into* the
    /// node, materialised from the transition's error mask when the
    /// finding is recorded.
    pub step_errors: Vec<StepError>,
}

/// The result of a symbolic expansion run.
#[derive(Clone, Debug)]
pub struct Expansion {
    /// Append-only arena of every state ever admitted.
    pub nodes: Vec<Node>,
    /// Hash-consed storage behind the nodes' [`CompositeId`]s.
    pub arena: CompositeArena,
    /// The essential states (surviving history) at fixpoint.
    pub essential: Vec<NodeId>,
    /// Number of rule firings — one per (source state, transition
    /// label) pair ("state visits" in the §3.1 sense; 22 for Illinois,
    /// matching Appendix A.2). A firing whose interval arithmetic
    /// splits into several successor categories still counts once,
    /// like the paper's N-step rules.
    pub visits: usize,
    /// Raw generated successor states — `visits` plus the extra
    /// category-split successors; equals `trace.len()` when tracing.
    pub successors: usize,
    /// Number of states popped and expanded.
    pub expanded: usize,
    /// Erroneous findings, in discovery order.
    pub errors: Vec<ErrorFinding>,
    /// Trace of every visit (empty unless requested).
    pub trace: Vec<VisitRecord>,
    /// True if the run stopped early (budget, deadline, memory cap or
    /// cancellation) instead of reaching the fixpoint.
    pub truncated: bool,
    /// Why and in what state the run stopped early (`None` for runs
    /// that reached the fixpoint). Always `Some` when `truncated`.
    pub stopped: Option<StopInfo>,
}

impl Expansion {
    /// True iff no erroneous state or transition was found (and the
    /// run completed).
    pub fn is_clean(&self) -> bool {
        self.errors.is_empty() && !self.truncated
    }

    /// The composite state of arena node `id`.
    pub fn composite(&self, id: NodeId) -> &Composite {
        self.arena.get(self.nodes[id.0].state)
    }

    /// The essential composite states, in discovery order.
    pub fn essential_states(&self) -> Vec<&Composite> {
        self.essential
            .iter()
            .map(|&id| self.composite(id))
            .collect()
    }

    /// The path of transitions from the initial state to `id`
    /// (inclusive): `[(None, root), (Some(label), next), …]`.
    pub fn path_to(&self, id: NodeId) -> Vec<(Option<Label>, NodeId)> {
        let mut rev = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            let parent = self.nodes[c.0].parent;
            rev.push((parent.map(|(_, l)| l), c));
            cur = parent.map(|(p, _)| p);
        }
        rev.reverse();
        rev
    }

    /// Renders a counterexample path with protocol state names.
    pub fn render_path(&self, spec: &ProtocolSpec, id: NodeId) -> String {
        let mut s = String::new();
        for (label, node) in self.path_to(id) {
            if let Some(l) = label {
                s.push_str(&format!(" --{}--> ", l.render(spec)));
            }
            s.push_str(&self.composite(node).render_full(spec));
        }
        s
    }
}

/// Reusable engine state: successor scratch, the containment index, and
/// a recycled arena. One scratch serves any number of sequential runs
/// (the batch layer threads it through [`expand_with`]), and after the
/// first run the engine's steady state allocates nothing per step.
#[derive(Debug, Default)]
pub struct EngineScratch {
    expand: ExpandScratch,
    succ: Vec<Transition>,
    fired: Vec<Label>,
    index: ContainmentIndex,
    arena_pool: Option<CompositeArena>,
}

impl EngineScratch {
    /// Fresh (empty) engine scratch.
    pub fn new() -> EngineScratch {
        EngineScratch::default()
    }

    /// Returns a finished expansion's arena storage to the pool, so the
    /// next run through this scratch interns without reallocating. Use
    /// when the expansion's states are no longer needed (summary-only
    /// batch runs).
    pub fn recycle(&mut self, expansion: Expansion) {
        let mut arena = expansion.arena;
        arena.clear();
        self.arena_pool = Some(arena);
    }
}

/// Mutable state of one expansion run, shared by the sequential and
/// parallel drivers. [`EngineCore::absorb`] is the single merge point:
/// every successor — wherever it was computed — passes through it in
/// worklist order, so both drivers make identical admit/prune/intern
/// decisions by construction.
struct EngineCore<'a> {
    spec: &'a ProtocolSpec,
    opts: &'a Options,
    sink: &'a SinkHandle,
    events: bool,
    rules_on: bool,
    rule_stats: Vec<RuleStat>,
    arena: CompositeArena,
    index: &'a mut ContainmentIndex,
    fired: &'a mut Vec<Label>,
    nodes: Vec<Node>,
    work: VecDeque<NodeId>,
    history: Vec<NodeId>,
    errors: Vec<ErrorFinding>,
    trace: Vec<VisitRecord>,
    visits: usize,
    successors_generated: usize,
    expanded: usize,
    truncated: bool,
    containment_checks: u64,
    index_probes: u64,
    prunes: u64,
    gov: Governor,
}

impl EngineCore<'_> {
    /// Merges the successors of `current` into the run — the exact
    /// per-successor body of the Figure 3 loop. Returns `true` when the
    /// run must stop (budget exhaustion, cancellation, or
    /// stop-at-first-error); `truncated` is set for the inconclusive
    /// causes.
    fn absorb(&mut self, current: NodeId, current_state: &Composite, succ: &[Transition]) -> bool {
        let EngineCore {
            spec,
            opts,
            sink,
            events,
            rules_on,
            rule_stats,
            arena,
            index,
            fired,
            nodes,
            work,
            errors,
            trace,
            visits,
            successors_generated,
            truncated,
            containment_checks,
            index_probes,
            prunes,
            gov,
            ..
        } = self;
        // One visit per rule firing: the successor categories of a
        // split firing share their label within this expansion.
        fired.clear();
        for t in succ.iter() {
            *successors_generated += 1;
            let rid = spec.rule_id(t.label.origin.state, t.label.event);
            if !fired.contains(&t.label) {
                fired.push(t.label);
                *visits += 1;
                sink.count(Counter::Visits, 1);
                sink.count(Counter::RuleFirings, 1);
                if *rules_on {
                    rule_stats[rid].firings += 1;
                }
            }
            if *rules_on {
                rule_stats[rid].states += 1;
            }
            if *visits >= opts.common.budget {
                gov.stop(StopCause::BudgetExhausted);
                *truncated = true;
                return true;
            }
            // Cheap per-firing check; the full (clock + memory) poll
            // happens once per expansion in the drivers.
            if gov.cancelled().is_some() {
                *truncated = true;
                return true;
            }

            // Is the successor contained in a surviving state? The
            // containment queries dominate the engine's cost, so they
            // are what per-rule wall time attributes.
            let tid = arena.intern(&t.to);
            let scan_start = rules_on.then(Instant::now);
            let container_exists =
                index.find_container(arena, tid, opts.pruning, containment_checks, index_probes);
            if let Some(start) = scan_start {
                rule_stats[rid].nanos += start.elapsed().as_nanos() as u64;
            }

            if opts.record_trace {
                trace.push(VisitRecord {
                    from: current_state.clone(),
                    label: t.label,
                    to: t.to.clone(),
                    disposition: if container_exists {
                        Disposition::Contained
                    } else {
                        Disposition::New
                    },
                });
            }

            if container_exists {
                // The state family is already covered; the *transition*
                // may still carry a stale-access error.
                *prunes += 1;
                if *rules_on {
                    rule_stats[rid].dedup_hits += 1;
                }
                if !t.errors.is_empty() {
                    let id = NodeId(nodes.len());
                    let violations = check(spec, &t.to);
                    if *events {
                        sink.violation(&format!("stale access via {}", t.label.render(spec)));
                    }
                    if *rules_on {
                        rule_stats[rid].violations += 1;
                    }
                    nodes.push(Node {
                        state: tid,
                        parent: Some((current, t.label)),
                        violations: violations.clone(),
                        pruned: true, // not part of the frontier
                    });
                    errors.push(ErrorFinding {
                        node: id,
                        violations,
                        step_errors: t.errors.to_vec(),
                    });
                    sink.count(Counter::Errors, 1);
                    if opts.common.stop_at_first_error {
                        return true;
                    }
                }
                continue;
            }

            // New state: admit, prune displaced survivors, enqueue.
            let id = NodeId(nodes.len());
            let violations = check(spec, &t.to);
            let scan_start = rules_on.then(Instant::now);
            index.prune_covered(
                arena,
                tid,
                opts.pruning,
                containment_checks,
                index_probes,
                |displaced| {
                    nodes[displaced.0].pruned = true;
                    *prunes += 1;
                },
            );
            if let Some(start) = scan_start {
                rule_stats[rid].nanos += start.elapsed().as_nanos() as u64;
            }
            nodes.push(Node {
                state: tid,
                parent: Some((current, t.label)),
                violations: violations.clone(),
                pruned: false,
            });
            index.insert(id, tid, &t.to);
            if !violations.is_empty() || !t.errors.is_empty() {
                if *events {
                    sink.violation(&format!(
                        "erroneous state reached via {}",
                        t.label.render(spec)
                    ));
                }
                if *rules_on {
                    rule_stats[rid].violations += 1;
                }
                errors.push(ErrorFinding {
                    node: id,
                    violations,
                    step_errors: t.errors.to_vec(),
                });
                sink.count(Counter::Errors, 1);
                if opts.common.stop_at_first_error {
                    return true;
                }
            }
            work.push_back(id);
        }
        false
    }
}

/// The deterministic fork-join driver (`threads > 1`).
///
/// Each round drains the queue into a batch — one generation of the
/// sequential FIFO order. Workers speculatively expand disjoint slices
/// of the batch into per-worker buffers, reading only the immutable
/// arena; nothing shared is written during the forked phase. The
/// coordinator then merges the precomputed successor lists strictly in
/// batch order through [`EngineCore::absorb`] — the same code the
/// sequential loop runs — recreating every sequential decision: a node
/// pruned by an earlier merge step is skipped exactly as the
/// sequential pop would skip it (its speculative expansion is
/// discarded), interning order and hence [`CompositeId`] assignment
/// are unchanged, and early stops re-queue the unmerged tail so the
/// reported frontier matches. Output is therefore bit-identical to the
/// sequential engine for any worker count; only wall-clock time
/// differs.
fn run_parallel(core: &mut EngineCore<'_>, workers: usize) {
    let mut worker_scratch: Vec<ExpandScratch> = Vec::new();
    worker_scratch.resize_with(workers, ExpandScratch::default);
    let mut inline_scratch = ExpandScratch::default();
    let mut batch: Vec<NodeId> = Vec::new();
    let mut jobs: Vec<usize> = Vec::new();
    let mut results: Vec<Vec<Transition>> = Vec::new();
    'outer: while !core.work.is_empty() {
        batch.clear();
        batch.extend(core.work.drain(..));
        // Nodes already pruned would be skipped by the sequential pop
        // too (pruning is monotonic), so they are not expanded at all;
        // nodes pruned *during* this batch's merge are expanded
        // speculatively and their results discarded below.
        jobs.clear();
        jobs.extend((0..batch.len()).filter(|&i| !core.nodes[batch[i].0].pruned));
        if results.len() < jobs.len() {
            results.resize_with(jobs.len(), Vec::new);
        }
        if jobs.len() > 1 {
            core.sink.count(Counter::MergeWaits, 1);
            let spec = core.spec;
            let arena = &core.arena;
            let nodes = &core.nodes;
            let batch = &batch;
            let chunk = jobs.len().div_ceil(workers);
            std::thread::scope(|s| {
                for ((job_chunk, res_chunk), scratch) in jobs
                    .chunks(chunk)
                    .zip(results.chunks_mut(chunk))
                    .zip(worker_scratch.iter_mut())
                {
                    s.spawn(move || {
                        for (&bi, out) in job_chunk.iter().zip(res_chunk.iter_mut()) {
                            let state = arena.get(nodes[batch[bi].0].state);
                            successors_into(spec, state, scratch, out);
                        }
                    });
                }
            });
        } else {
            for (k, &bi) in jobs.iter().enumerate() {
                let state = core.arena.get(core.nodes[batch[bi].0].state).clone();
                successors_into(core.spec, &state, &mut inline_scratch, &mut results[k]);
            }
        }
        // Merge strictly in batch order; `cursor` pairs each unpruned
        // batch position with its precomputed successor list.
        let mut cursor = 0usize;
        for (i, &current) in batch.iter().enumerate() {
            if core.nodes[current.0].pruned {
                if cursor < jobs.len() && jobs[cursor] == i {
                    cursor += 1;
                }
                continue;
            }
            if core.gov.poll(core.arena.approx_bytes() as u64).is_some() {
                for &b in batch[i..].iter().rev() {
                    core.work.push_front(b);
                }
                core.truncated = true;
                break 'outer;
            }
            core.expanded += 1;
            core.sink.count(Counter::Expansions, 1);
            if core.events {
                // What the sequential queue would hold right now: the
                // unmerged tail of this batch plus the states merged
                // elements already enqueued.
                let pending = batch.len() - i - 1 + core.work.len();
                core.sink.sample(Track::Pending, pending as u64);
                core.sink.sample(Track::Visited, core.nodes.len() as u64);
            }
            let current_state = core.arena.get(core.nodes[current.0].state).clone();
            debug_assert_eq!(jobs[cursor], i);
            let succ = std::mem::take(&mut results[cursor]);
            cursor += 1;
            let stop = core.absorb(current, &current_state, &succ);
            results[cursor - 1] = succ; // return the buffer for reuse
            if stop {
                for &b in batch[i + 1..].iter().rev() {
                    core.work.push_front(b);
                }
                break 'outer;
            }
            if !core.nodes[current.0].pruned {
                core.history.push(current);
            }
        }
    }
}

/// Runs the essential-states generation algorithm of Figure 3 on
/// `spec`, starting (per §4.0) from `(Invalid⁺)` with fresh memory.
pub fn expand(spec: &ProtocolSpec, opts: &Options) -> Expansion {
    expand_from(spec, Composite::initial(spec), opts)
}

/// Runs the worklist from an explicit initial composite state.
pub fn expand_from(spec: &ProtocolSpec, initial: Composite, opts: &Options) -> Expansion {
    expand_with(spec, initial, opts, &mut EngineScratch::new())
}

/// Runs the worklist from an explicit initial state through
/// caller-owned [`EngineScratch`] — the batch entry point.
pub fn expand_with(
    spec: &ProtocolSpec,
    initial: Composite,
    opts: &Options,
    scratch: &mut EngineScratch,
) -> Expansion {
    let sink = &opts.common.sink;
    // The sink's enabled state is queried once: per-iteration checks
    // would re-poll every tee'd sink inside the hot loop.
    let events = sink.is_enabled();
    let rules_on = opts.common.rule_stats && events;
    // Fixed-size attribution table indexed by rule id; reported once
    // at exit so the loop below never allocates for observability.
    let rule_stats: Vec<RuleStat> = if rules_on {
        vec![RuleStat::default(); spec.num_rules()]
    } else {
        Vec::new()
    };
    let EngineScratch {
        expand: exp_scratch,
        succ,
        fired,
        index,
        arena_pool,
    } = scratch;
    let mut arena = arena_pool.take().unwrap_or_default();
    arena.clear();
    index.clear();
    let mut nodes: Vec<Node> = Vec::new();
    let mut work: VecDeque<NodeId> = VecDeque::new();
    let mut errors: Vec<ErrorFinding> = Vec::new();
    // Deadline / memory-cap / cancellation arbitration. The cheap
    // token check runs per rule firing; the clock and the memory
    // estimate are only read every `Governor::STRIDE` firings.
    let gov = opts.common.governor();
    // 0 = auto: one worker per core the scheduler grants us.
    let workers = match opts.threads {
        0 => std::thread::available_parallelism().map_or(1, |p| p.get()),
        t => t,
    };

    sink.phase_enter(Phase::Expand);

    let init_violations = check(spec, &initial);
    let init_id = arena.intern(&initial);
    nodes.push(Node {
        state: init_id,
        parent: None,
        violations: init_violations.clone(),
        pruned: false,
    });
    index.insert(NodeId(0), init_id, &initial);
    if !init_violations.is_empty() {
        errors.push(ErrorFinding {
            node: NodeId(0),
            violations: init_violations,
            step_errors: Vec::new(),
        });
        sink.count(Counter::Errors, 1);
        sink.violation("initial composite state violates coherence");
    }
    work.push_back(NodeId(0));

    let mut core = EngineCore {
        spec,
        opts,
        sink,
        events,
        rules_on,
        rule_stats,
        arena,
        index,
        fired,
        nodes,
        work,
        history: Vec::new(),
        errors,
        trace: Vec::new(),
        visits: 0,
        successors_generated: 0,
        expanded: 0,
        truncated: false,
        // Full pairwise containment evaluations and index candidate
        // probes, accumulated locally and reported in one count at the
        // end — the query paths are the engine's hot path.
        containment_checks: 0,
        index_probes: 0,
        prunes: 0,
        gov,
    };

    sink.span_begin(SpanKind::WorkerBusy, 0);
    if workers > 1 {
        run_parallel(&mut core, workers);
    } else {
        while let Some(current) = core.work.pop_front() {
            if core.nodes[current.0].pruned {
                continue;
            }
            // Full governor poll per expansion: a clock read is noise
            // next to the containment scans each expansion performs,
            // and it bounds how stale the deadline / memory checks can
            // get.
            if core.gov.poll(core.arena.approx_bytes() as u64).is_some() {
                core.work.push_front(current);
                core.truncated = true;
                break;
            }
            core.expanded += 1;
            sink.count(Counter::Expansions, 1);
            if events {
                sink.sample(Track::Pending, core.work.len() as u64);
                sink.sample(Track::Visited, core.nodes.len() as u64);
            }
            let current_state = core.arena.get(core.nodes[current.0].state).clone();
            successors_into(spec, &current_state, exp_scratch, succ);
            if core.absorb(current, &current_state, succ) {
                break;
            }
            if !core.nodes[current.0].pruned {
                core.history.push(current);
            }
        }
    }
    sink.span_end(SpanKind::WorkerBusy, 0);

    let EngineCore {
        rule_stats,
        arena,
        nodes,
        work,
        history,
        errors,
        trace,
        visits,
        successors_generated,
        expanded,
        truncated,
        containment_checks,
        index_probes,
        prunes,
        gov,
        ..
    } = core;

    let essential: Vec<NodeId> = history
        .into_iter()
        .filter(|id| !nodes[id.0].pruned)
        .collect();

    let stopped = gov.stop_info(work.len());
    sink.count(Counter::ContainmentChecks, containment_checks);
    sink.count(Counter::IndexProbes, index_probes);
    sink.count(Counter::InternHits, arena.hits());
    sink.count(Counter::Prunes, prunes);
    sink.count(Counter::BudgetPolls, gov.polls());
    sink.gauge(Gauge::EssentialStates, essential.len() as u64);
    sink.gauge(Gauge::ArenaBytes, arena.approx_bytes() as u64);
    sink.gauge(Gauge::SymWorkers, workers as u64);
    if let Some(info) = &stopped {
        sink.count(Counter::BudgetStops, 1);
        sink.stopped(info.cause.name(), info.detail.as_deref());
    }
    if rules_on {
        for (rid, stat) in rule_stats.iter().enumerate() {
            if stat.firings > 0 || stat.states > 0 {
                sink.rule_stats(&spec.rule_name(rid), *stat);
            }
        }
    }
    if events {
        sink.progress(&format!(
            "expand: {} visits, {} essential states",
            visits,
            essential.len()
        ));
    }
    sink.phase_exit(Phase::Expand);

    Expansion {
        nodes,
        arena,
        essential,
        visits,
        successors: successors_generated,
        expanded,
        errors,
        trace,
        truncated,
        stopped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::protocols::{illinois, illinois_missing_invalidation, msi};

    #[test]
    fn illinois_reaches_the_five_paper_states() {
        let spec = illinois();
        let exp = expand(&spec, &Options::default());
        assert!(exp.is_clean(), "Illinois must verify clean");
        let rendered: Vec<String> = exp
            .essential_states()
            .iter()
            .map(|c| c.render(&spec))
            .collect();
        let expected = [
            "(Inv+)",
            "(V-Ex, Inv*)",
            "(Dirty, Inv*)",
            "(Shared+, Inv*)",
            "(Shared, Inv+)",
        ];
        assert_eq!(
            rendered.len(),
            expected.len(),
            "essential states: {rendered:?}"
        );
        for e in expected {
            assert!(
                rendered.contains(&e.to_string()),
                "missing {e} in {rendered:?}"
            );
        }
    }

    #[test]
    fn msi_verifies_clean() {
        let spec = msi();
        let exp = expand(&spec, &Options::default());
        assert!(exp.is_clean());
        assert!(!exp.essential.is_empty());
    }

    #[test]
    fn buggy_illinois_is_rejected_with_counterexample() {
        let spec = illinois_missing_invalidation();
        let exp = expand(&spec, &Options::default());
        assert!(!exp.errors.is_empty(), "the seeded bug must be found");
        let finding = &exp.errors[0];
        let path = exp.render_path(&spec, finding.node);
        assert!(
            path.contains("-->"),
            "counterexample must be a path: {path}"
        );
    }

    #[test]
    fn stop_at_first_error_halts_early() {
        let spec = illinois_missing_invalidation();
        let full = expand(&spec, &Options::default());
        let early = expand(&spec, &Options::default().stop_at_first_error(true));
        assert_eq!(early.errors.len(), 1);
        assert!(early.visits <= full.visits);
    }

    #[test]
    fn equality_pruning_visits_at_least_as_many_states() {
        let spec = illinois();
        let contained = expand(&spec, &Options::default());
        let equality = expand(&spec, &Options::default().pruning(Pruning::Equality));
        assert!(equality.is_clean());
        assert!(
            equality.visits >= contained.visits,
            "containment pruning must not increase visits ({} vs {})",
            equality.visits,
            contained.visits
        );
        // Every containment-essential state family must still be
        // covered by some equality-reached state.
        for ess in contained.essential_states() {
            assert!(
                equality.nodes.iter().any(|n| {
                    let s = equality.arena.get(n.state);
                    ess.covered_by(s) || s.covered_by(ess)
                }),
                "family {ess:?} lost under equality pruning"
            );
        }
    }

    #[test]
    fn trace_is_recorded_on_request() {
        let spec = illinois();
        let exp = expand(&spec, &Options::default().record_trace(true));
        assert_eq!(exp.trace.len(), exp.successors);
        assert!(exp.visits <= exp.successors);
        assert!(exp.trace.iter().any(|v| v.disposition == Disposition::New));
    }

    #[test]
    fn path_to_root_is_single_entry() {
        let spec = illinois();
        let exp = expand(&spec, &Options::default());
        let path = exp.path_to(NodeId(0));
        assert_eq!(path.len(), 1);
        assert!(path[0].0.is_none());
    }

    #[test]
    fn scratch_reuse_across_runs_is_equivalent() {
        // The same EngineScratch must serve consecutive runs — of
        // different protocols — without contaminating results.
        let mut scratch = EngineScratch::new();
        let opts = Options::default();
        let ill = illinois();
        let fresh_ill = expand(&ill, &opts);
        let warm1 = expand_with(&ill, Composite::initial(&ill), &opts, &mut scratch);
        assert_eq!(warm1.visits, fresh_ill.visits);
        scratch.recycle(warm1);
        let m = msi();
        let fresh_msi = expand(&m, &opts);
        let warm2 = expand_with(&m, Composite::initial(&m), &opts, &mut scratch);
        assert_eq!(warm2.visits, fresh_msi.visits);
        assert_eq!(
            warm2.essential_states().len(),
            fresh_msi.essential_states().len()
        );
        scratch.recycle(warm2);
        let warm3 = expand_with(&ill, Composite::initial(&ill), &opts, &mut scratch);
        assert_eq!(warm3.visits, fresh_ill.visits);
        let a: Vec<String> = warm3
            .essential_states()
            .iter()
            .map(|c| c.render(&ill))
            .collect();
        let b: Vec<String> = fresh_ill
            .essential_states()
            .iter()
            .map(|c| c.render(&ill))
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rule_stats_firings_sum_to_the_counter() {
        use ccv_observe::Metrics;
        use std::sync::Arc;

        let spec = illinois();
        let metrics = Arc::new(Metrics::new());
        let opts = Options::default().common(
            CommonOptions::default()
                .with_sink(metrics.clone())
                .rule_stats(true),
        );
        let exp = expand(&spec, &opts);
        assert!(exp.is_clean());

        let snap = metrics.snapshot();
        assert!(!snap.rules.is_empty());
        let total_firings: u64 = snap.rules.values().map(|s| s.firings).sum();
        assert_eq!(total_firings, snap.counter(Counter::RuleFirings));
        assert_eq!(total_firings, exp.visits as u64);
        let total_states: u64 = snap.rules.values().map(|s| s.states).sum();
        assert_eq!(total_states, exp.successors as u64);
        // Rule names follow the "<state>:<event>" convention.
        for name in snap.rules.keys() {
            assert!(name.contains(':'), "unexpected rule name {name}");
        }
    }

    #[test]
    fn rule_stats_off_by_default_even_with_a_sink() {
        use ccv_observe::Metrics;
        use std::sync::Arc;

        let spec = illinois();
        let metrics = Arc::new(Metrics::new());
        let exp = expand(&spec, &Options::default().sink(metrics.clone() as Arc<_>));
        assert!(exp.is_clean());
        assert!(metrics.snapshot().rules.is_empty());
    }

    #[test]
    fn intern_and_index_counters_are_reported() {
        use ccv_observe::Metrics;
        use std::sync::Arc;

        let spec = illinois();
        let metrics = Arc::new(Metrics::new());
        let exp = expand(&spec, &Options::default().sink(metrics.clone() as Arc<_>));
        assert!(exp.is_clean());
        let snap = metrics.snapshot();
        assert!(
            snap.counter(Counter::InternHits) > 0,
            "duplicate successors must hash-cons"
        );
        assert!(snap.counter(Counter::ContainmentChecks) > 0);
        assert_eq!(snap.gauge(Gauge::EssentialStates), Some(5));
        assert!(snap.gauge(Gauge::ArenaBytes).unwrap_or(0) > 0);
    }

    #[test]
    fn max_visits_truncates() {
        let spec = illinois();
        let exp = expand(&spec, &Options::default().max_visits(3));
        assert!(exp.truncated);
        assert!(!exp.is_clean());
        let info = exp.stopped.expect("truncated runs carry stop info");
        assert_eq!(info.cause, ccv_observe::StopCause::BudgetExhausted);
    }

    #[test]
    fn zero_deadline_stops_inconclusively() {
        let spec = illinois();
        let opts = Options::default()
            .common(CommonOptions::default().deadline(Some(std::time::Duration::ZERO)));
        let exp = expand(&spec, &opts);
        assert!(exp.truncated);
        let info = exp.stopped.expect("deadline stop carries info");
        assert_eq!(info.cause, ccv_observe::StopCause::DeadlineExpired);
    }

    #[test]
    fn tiny_memory_cap_stops_inconclusively() {
        let spec = illinois();
        let opts = Options::default().common(CommonOptions::default().max_bytes(Some(1)));
        let exp = expand(&spec, &opts);
        assert!(exp.truncated);
        assert_eq!(
            exp.stopped.unwrap().cause,
            ccv_observe::StopCause::MemoryExhausted
        );
    }

    #[test]
    fn pre_cancelled_token_stops_immediately() {
        let spec = illinois();
        let token = ccv_observe::CancelToken::new();
        token.cancel();
        let opts = Options::default().common(CommonOptions::default().cancel(token));
        let exp = expand(&spec, &opts);
        assert!(exp.truncated);
        let info = exp.stopped.unwrap();
        assert_eq!(info.cause, ccv_observe::StopCause::Cancelled);
        // A clean rerun with default options is unaffected by the
        // cancelled run.
        assert!(expand(&spec, &Options::default()).is_clean());
    }

    #[test]
    fn completed_runs_have_no_stop_info() {
        let spec = illinois();
        let exp = expand(&spec, &Options::default());
        assert!(exp.is_clean());
        assert!(exp.stopped.is_none());
    }

    #[test]
    fn parallel_expansion_is_bit_identical_to_sequential() {
        for spec in [illinois(), msi(), illinois_missing_invalidation()] {
            let seq = expand(&spec, &Options::default().record_trace(true));
            for t in [0, 2, 4, 8] {
                let par = expand(&spec, &Options::default().record_trace(true).threads(t));
                assert_eq!(par.visits, seq.visits, "threads={t}");
                assert_eq!(par.successors, seq.successors, "threads={t}");
                assert_eq!(par.expanded, seq.expanded, "threads={t}");
                assert_eq!(par.essential, seq.essential, "threads={t}");
                assert_eq!(par.nodes.len(), seq.nodes.len(), "threads={t}");
                for (a, b) in par.nodes.iter().zip(seq.nodes.iter()) {
                    assert_eq!(a.state, b.state, "threads={t}");
                    assert_eq!(a.parent, b.parent, "threads={t}");
                    assert_eq!(a.pruned, b.pruned, "threads={t}");
                }
                assert_eq!(par.errors.len(), seq.errors.len(), "threads={t}");
                for (a, b) in par.errors.iter().zip(seq.errors.iter()) {
                    assert_eq!(a.node, b.node, "threads={t}");
                    assert_eq!(a.step_errors.len(), b.step_errors.len(), "threads={t}");
                }
                assert_eq!(par.trace.len(), seq.trace.len(), "threads={t}");
                for (a, b) in par.trace.iter().zip(seq.trace.iter()) {
                    assert_eq!(a.disposition, b.disposition, "threads={t}");
                }
                let a: Vec<String> = par
                    .essential_states()
                    .iter()
                    .map(|c| c.render(&spec))
                    .collect();
                let b: Vec<String> = seq
                    .essential_states()
                    .iter()
                    .map(|c| c.render(&spec))
                    .collect();
                assert_eq!(a, b, "threads={t}");
            }
        }
    }

    #[test]
    fn parallel_budget_stop_matches_sequential() {
        let spec = illinois();
        let seq = expand(&spec, &Options::default().max_visits(3));
        let par = expand(&spec, &Options::default().max_visits(3).threads(4));
        assert!(par.truncated);
        assert_eq!(par.visits, seq.visits);
        assert_eq!(par.nodes.len(), seq.nodes.len());
        let (ps, ss) = (par.stopped.unwrap(), seq.stopped.unwrap());
        assert_eq!(ps.cause, ss.cause);
        assert_eq!(ps.frontier, ss.frontier);
    }

    #[test]
    fn parallel_stop_at_first_error_matches_sequential() {
        let spec = illinois_missing_invalidation();
        let seq = expand(&spec, &Options::default().stop_at_first_error(true));
        let par = expand(
            &spec,
            &Options::default().stop_at_first_error(true).threads(8),
        );
        assert_eq!(par.errors.len(), 1);
        assert_eq!(par.visits, seq.visits);
        assert_eq!(par.errors[0].node, seq.errors[0].node);
        assert_eq!(par.nodes.len(), seq.nodes.len());
    }

    #[test]
    fn parallel_run_reports_worker_gauge_and_merge_waits() {
        use ccv_observe::Metrics;
        use std::sync::Arc;

        let spec = illinois();
        let metrics = Arc::new(Metrics::new());
        let exp = expand(
            &spec,
            &Options::default()
                .threads(2)
                .sink(metrics.clone() as Arc<_>),
        );
        assert!(exp.is_clean());
        let snap = metrics.snapshot();
        assert_eq!(snap.gauge(Gauge::SymWorkers), Some(2));
        assert!(
            snap.counter(Counter::MergeWaits) > 0,
            "a multi-element batch must fork at least once"
        );
    }
}
