//! The containment index — indexed survivor lookup for the engine.
//!
//! The pre-refactor engine answered both containment questions
//! ("is this successor contained in a survivor?" and "which survivors
//! does this new state swallow?") by scanning every live node and
//! running the full Definition-9 check. This module narrows both scans
//! structurally, in two stages:
//!
//! 1. **Bucket by `(FVal, MData)`.** Containment requires equal
//!    characteristic-function value and memory freshness, so only the
//!    matching bucket can hold candidates.
//! 2. **Prefilter by [`ClassSig`].** If `a` is contained in `b` then
//!    (i) every class of `a` is present in `b` (a `1`/`+`/`*` operator
//!    is never covered by an absent class) and (ii) every non-`*` class
//!    of `b` is present in `a` (an absent class admits zero caches,
//!    which only `*` covers). Both are set-inclusion facts, and unions
//!    of per-class bits preserve set inclusion even when slots collide
//!    modulo 64 — so the mask tests never reject a true candidate, and
//!    the full [`Composite::contained_in`] check confirms survivors.
//!    Results are therefore bit-identical to the linear scan.
//!
//! In **equality** pruning mode containment degenerates to equality:
//! the discard question is answered by an exact [`CompositeId`] lookup
//! against the live set (interning makes equal states share ids), and
//! prune-old is a no-op (an equal live state would have discarded the
//! newcomer first). The exact lookup also short-circuits containment
//! mode, since equality implies containment.
//!
//! The `exact` map is well-defined because two *live* nodes never hold
//! equal composites: the second one would have been discarded as
//! contained when it was generated. Pruned nodes are removed from both
//! structures, so a later re-discovery of the same composite is
//! re-admitted exactly as the linear scan would.

use crate::composite::{ClassSig, Composite};
use crate::engine::{NodeId, Pruning};
use crate::fval::FVal;
use crate::intern::{CompositeArena, CompositeId};
use ccv_model::MData;
use std::collections::HashMap;

#[derive(Clone, Copy, Debug)]
struct Entry {
    sig: ClassSig,
    id: CompositeId,
    node: NodeId,
}

/// Index over the engine's live (unpruned) nodes, supporting both
/// containment directions. See the module docs for the soundness
/// argument.
#[derive(Debug, Default)]
pub struct ContainmentIndex {
    /// Live nodes bucketed by the containment-compatible part of their
    /// state.
    groups: HashMap<(FVal, MData), Vec<Entry>>,
    /// Live nodes by interned state id — the equality fast path.
    exact: HashMap<CompositeId, NodeId>,
}

impl ContainmentIndex {
    /// An empty index.
    pub fn new() -> ContainmentIndex {
        ContainmentIndex::default()
    }

    /// Number of live nodes indexed.
    pub fn len(&self) -> usize {
        self.exact.len()
    }

    /// True iff no node is indexed.
    pub fn is_empty(&self) -> bool {
        self.exact.is_empty()
    }

    /// Forgets every entry but keeps allocated capacity.
    pub fn clear(&mut self) {
        for g in self.groups.values_mut() {
            g.clear();
        }
        self.exact.clear();
    }

    /// Registers a newly admitted live node holding `comp` (the
    /// composite behind `id`).
    pub fn insert(&mut self, node: NodeId, id: CompositeId, comp: &Composite) {
        let prev = self.exact.insert(id, node);
        debug_assert!(prev.is_none(), "two live nodes share a composite");
        self.groups
            .entry((comp.f, comp.mdata))
            .or_default()
            .push(Entry {
                sig: comp.signature(),
                id,
                node,
            });
    }

    /// Discard-new direction: is the state behind `id` contained in
    /// some live node's state? Increments `probes` per signature
    /// candidate examined and `checks` per full containment (or exact)
    /// evaluation.
    pub fn find_container(
        &self,
        arena: &CompositeArena,
        id: CompositeId,
        pruning: Pruning,
        checks: &mut u64,
        probes: &mut u64,
    ) -> bool {
        // Equality implies containment, so the id lookup is a valid
        // fast path in both modes.
        if self.exact.contains_key(&id) {
            *checks += 1;
            return true;
        }
        if pruning == Pruning::Equality {
            return false;
        }
        let t = arena.get(id);
        let sig = t.signature();
        let Some(group) = self.groups.get(&(t.f, t.mdata)) else {
            return false;
        };
        for e in group {
            *probes += 1;
            // t ⊑ e needs support(t) ⊆ support(e) and nonstar(e) ⊆ support(t).
            if sig.support & e.sig.support == sig.support
                && e.sig.nonstar & sig.support == e.sig.nonstar
            {
                *checks += 1;
                if t.contained_in(arena.get(e.id)) {
                    return true;
                }
            }
        }
        false
    }

    /// Prune-old direction: removes from the index every live node
    /// whose state is contained in the state behind `id`, invoking
    /// `on_prune` for each. No-op in equality mode (see module docs).
    pub fn prune_covered(
        &mut self,
        arena: &CompositeArena,
        id: CompositeId,
        pruning: Pruning,
        checks: &mut u64,
        probes: &mut u64,
        mut on_prune: impl FnMut(NodeId),
    ) {
        if pruning == Pruning::Equality {
            return;
        }
        let t = arena.get(id);
        let sig = t.signature();
        let ContainmentIndex { groups, exact } = self;
        let Some(group) = groups.get_mut(&(t.f, t.mdata)) else {
            return;
        };
        group.retain(|e| {
            *probes += 1;
            // e ⊑ t needs support(e) ⊆ support(t) and nonstar(t) ⊆ support(e).
            if e.sig.support & sig.support == e.sig.support
                && sig.nonstar & e.sig.support == sig.nonstar
            {
                *checks += 1;
                if arena.get(e.id).contained_in(t) {
                    exact.remove(&e.id);
                    on_prune(e.node);
                    return false;
                }
            }
            true
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composite::ClassKey;
    use crate::rep::Rep;
    use ccv_model::protocols::illinois;

    fn setup() -> (ccv_model::ProtocolSpec, CompositeArena, ContainmentIndex) {
        (illinois(), CompositeArena::new(), ContainmentIndex::new())
    }

    #[test]
    fn finds_container_and_counts_probes() {
        let (spec, mut arena, mut index) = setup();
        let sh = spec.state_by_name("Shared").unwrap();
        // Container: (Shared⁺, Inv*); contained: (Shared⁺, Inv⁺).
        let big = Composite::new(
            vec![
                (ClassKey::fresh(sh), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            crate::fval::FVal::V3,
        );
        let small = Composite::new(
            vec![
                (ClassKey::fresh(sh), Rep::Plus),
                (ClassKey::invalid(), Rep::Plus),
            ],
            MData::Fresh,
            crate::fval::FVal::V3,
        );
        let big_id = arena.intern(&big);
        let small_id = arena.intern(&small);
        index.insert(NodeId(0), big_id, &big);
        let (mut checks, mut probes) = (0u64, 0u64);
        assert!(index.find_container(
            &arena,
            small_id,
            Pruning::Containment,
            &mut checks,
            &mut probes
        ));
        assert_eq!(probes, 1);
        assert_eq!(checks, 1);
        // In equality mode the unequal state is not found.
        assert!(!index.find_container(
            &arena,
            small_id,
            Pruning::Equality,
            &mut checks,
            &mut probes
        ));
    }

    #[test]
    fn exact_hit_short_circuits_both_modes() {
        let (spec, mut arena, mut index) = setup();
        let init = Composite::initial(&spec);
        let id = arena.intern(&init);
        index.insert(NodeId(0), id, &init);
        let dup = arena.intern(&init);
        assert_eq!(dup, id);
        let (mut checks, mut probes) = (0u64, 0u64);
        for mode in [Pruning::Containment, Pruning::Equality] {
            assert!(index.find_container(&arena, dup, mode, &mut checks, &mut probes));
        }
        assert_eq!(probes, 0, "exact hits never touch the groups");
        assert_eq!(checks, 2);
    }

    #[test]
    fn bucket_mismatch_rejects_without_probing() {
        let (spec, mut arena, mut index) = setup();
        let init = Composite::initial(&spec);
        let id = arena.intern(&init);
        index.insert(NodeId(0), id, &init);
        // Same classes, different mdata: different bucket.
        let stale = Composite::new(
            vec![(ClassKey::invalid(), Rep::Plus)],
            MData::Obsolete,
            init.f,
        );
        let stale_id = arena.intern(&stale);
        let (mut checks, mut probes) = (0u64, 0u64);
        assert!(!index.find_container(
            &arena,
            stale_id,
            Pruning::Containment,
            &mut checks,
            &mut probes
        ));
        assert_eq!(probes, 0);
        assert_eq!(checks, 0);
    }

    #[test]
    fn prune_covered_removes_swallowed_survivors() {
        let (spec, mut arena, mut index) = setup();
        let sh = spec.state_by_name("Shared").unwrap();
        let small = Composite::new(
            vec![
                (ClassKey::fresh(sh), Rep::Plus),
                (ClassKey::invalid(), Rep::Plus),
            ],
            MData::Fresh,
            crate::fval::FVal::V3,
        );
        let big = Composite::new(
            vec![
                (ClassKey::fresh(sh), Rep::Plus),
                (ClassKey::invalid(), Rep::Star),
            ],
            MData::Fresh,
            crate::fval::FVal::V3,
        );
        let small_id = arena.intern(&small);
        let big_id = arena.intern(&big);
        index.insert(NodeId(0), small_id, &small);
        let (mut checks, mut probes) = (0u64, 0u64);
        let mut pruned = Vec::new();
        index.prune_covered(
            &arena,
            big_id,
            Pruning::Containment,
            &mut checks,
            &mut probes,
            |n| pruned.push(n),
        );
        assert_eq!(pruned, vec![NodeId(0)]);
        assert!(index.is_empty());
        // The pruned state can be re-admitted afterwards.
        index.insert(NodeId(1), small_id, &small);
        assert_eq!(index.len(), 1);
        // Equality mode never prunes.
        let mut none = Vec::new();
        index.prune_covered(
            &arena,
            big_id,
            Pruning::Equality,
            &mut checks,
            &mut probes,
            |n| none.push(n),
        );
        assert!(none.is_empty());
    }
}
