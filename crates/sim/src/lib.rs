//! # ccv-sim — trace-driven multiprocessor cache simulator
//!
//! The operational counterpart of the `ccv` verifiers: a shared-bus
//! multiprocessor with private set-associative caches that *executes*
//! the same validated [`ccv_model::ProtocolSpec`] objects the symbolic
//! engine proves correct. It serves two purposes:
//!
//! 1. **Operational sanity (experiment E8)** — a protocol the symbolic
//!    engine verifies must run millions of accesses of any workload
//!    without a single stale read; a rejected mutant must trip the
//!    latest-value oracle. This closes the loop between the FSM
//!    abstraction and an executable system.
//! 2. **Protocol comparison** — per-protocol bus traffic, miss ratios,
//!    invalidation/update counts on the classic sharing patterns
//!    (the style of study for which Archibald & Baer originally
//!    specified these protocols).
//!
//! ```
//! use ccv_sim::{Machine, MachineConfig, workload, WorkloadParams};
//! use ccv_model::protocols;
//!
//! let mut machine = Machine::new(protocols::illinois(), MachineConfig::small(4));
//! let trace = workload::hot_block(&WorkloadParams::new(4));
//! let report = machine.run(&trace);
//! assert!(report.is_coherent());
//! assert!(report.stats.bus_total() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod cost;
pub mod machine;
pub mod stats;
pub mod trace;
pub mod tracefile;
pub mod workload;

pub use cache::{Cache, Line};
pub use cost::CostModel;
pub use machine::{BlockSnapshot, CoherenceViolation, Machine, MachineConfig, RunReport};
pub use stats::Stats;
pub use trace::{Access, AccessKind, Trace};
pub use tracefile::{format_trace, load_trace, parse_trace, TraceParseError};
pub use workload::{all_workloads, WorkloadParams};
