//! Memory access traces.
//!
//! The simulator consumes sequences of processor accesses to cache
//! blocks. Traces are either synthesised by [`crate::workload`]
//! generators or built by hand in tests; the address space is block
//! granular (the protocols track one block's state, so the trace's
//! `block` is the unit of coherence).

use core::fmt;

/// Kind of processor access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One processor access to a cache block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Issuing processor (0-based).
    pub proc: usize,
    /// Block address.
    pub block: u64,
    /// Load or store.
    pub kind: AccessKind,
}

impl Access {
    /// A load by `proc` of `block`.
    pub fn read(proc: usize, block: u64) -> Access {
        Access {
            proc,
            block,
            kind: AccessKind::Read,
        }
    }

    /// A store by `proc` to `block`.
    pub fn write(proc: usize, block: u64) -> Access {
        Access {
            proc,
            block,
            kind: AccessKind::Write,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            AccessKind::Read => "R",
            AccessKind::Write => "W",
        };
        write!(f, "P{} {k} #{}", self.proc, self.block)
    }
}

/// A sequence of accesses with a descriptive name.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Workload name (for reports).
    pub name: String,
    /// Number of processors the trace assumes.
    pub procs: usize,
    /// The accesses, in global order (the atomic-bus model serialises
    /// them).
    pub accesses: Vec<Access>,
}

impl Trace {
    /// Creates a trace from parts.
    pub fn new(name: impl Into<String>, procs: usize, accesses: Vec<Access>) -> Trace {
        let t = Trace {
            name: name.into(),
            procs,
            accesses,
        };
        debug_assert!(t.accesses.iter().all(|a| a.proc < t.procs));
        t
    }

    /// Number of accesses.
    pub fn len(&self) -> usize {
        self.accesses.len()
    }

    /// True iff the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.accesses.is_empty()
    }

    /// Fraction of writes in the trace.
    pub fn write_ratio(&self) -> f64 {
        if self.accesses.is_empty() {
            return 0.0;
        }
        let w = self
            .accesses
            .iter()
            .filter(|a| a.kind == AccessKind::Write)
            .count();
        w as f64 / self.accesses.len() as f64
    }

    /// Number of distinct blocks referenced.
    pub fn distinct_blocks(&self) -> usize {
        let mut blocks: Vec<u64> = self.accesses.iter().map(|a| a.block).collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_display() {
        let r = Access::read(1, 7);
        let w = Access::write(0, 3);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(w.kind, AccessKind::Write);
        assert_eq!(r.to_string(), "P1 R #7");
        assert_eq!(w.to_string(), "P0 W #3");
    }

    #[test]
    fn trace_statistics() {
        let t = Trace::new(
            "t",
            2,
            vec![
                Access::read(0, 1),
                Access::write(1, 1),
                Access::read(0, 2),
                Access::write(0, 2),
            ],
        );
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.write_ratio(), 0.5);
        assert_eq!(t.distinct_blocks(), 2);
    }

    #[test]
    fn empty_trace() {
        let t = Trace::new("empty", 1, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.write_ratio(), 0.0);
        assert_eq!(t.distinct_blocks(), 0);
    }
}
