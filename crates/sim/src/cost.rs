//! Bus traffic cost model.
//!
//! Raw transaction counts under-state the difference between protocol
//! families: an invalidation is one address cycle, while a block fill
//! moves a whole cache line. Archibald & Baer's comparison therefore
//! weighs transactions by the words they move. [`CostModel`] assigns:
//!
//! * every bus transaction one address/command overhead (`ctrl_words`);
//! * every block transfer — fill from cache or memory, write-back,
//!   snooper flush — `block_words` of payload;
//! * every write-update broadcast and every write-through one word
//!   (the store datum).
//!
//! [`traffic_words`](CostModel::traffic_words) folds a [`Stats`] into
//! total words on the bus; `words_per_access` is the figure of merit
//! used by the protocol-comparison tables.

use crate::stats::Stats;
use ccv_model::BusOp;

/// Weights for converting transaction counts into bus words.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Words per cache block (line size).
    pub block_words: u64,
    /// Address/command overhead per bus transaction.
    pub ctrl_words: u64,
}

impl Default for CostModel {
    /// 8-word (32-byte) lines, one control word per transaction — the
    /// scale of the early-90s buses the protocols were designed for.
    fn default() -> CostModel {
        CostModel {
            block_words: 8,
            ctrl_words: 1,
        }
    }
}

impl CostModel {
    /// Total words moved over the bus for the given run statistics.
    pub fn traffic_words(&self, stats: &Stats) -> u64 {
        let ctrl = self.ctrl_words * stats.bus_total() as u64;
        // Block payloads: every fill (whoever serves it) and every
        // write-back / snooped flush moves a line.
        let blocks = self.block_words
            * (stats.cache_supplies + stats.memory_fills + stats.writebacks) as u64;
        // Word payloads: update broadcasts and write-throughs.
        let words = (stats.bus_count(BusOp::Update) + stats.through_writes) as u64;
        ctrl + blocks + words
    }

    /// Words per processor access — the protocol-comparison figure of
    /// merit.
    pub fn words_per_access(&self, stats: &Stats) -> f64 {
        if stats.accesses == 0 {
            0.0
        } else {
            self.traffic_words(stats) as f64 / stats.accesses as f64
        }
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_cost_nothing() {
        let cm = CostModel::default();
        let s = Stats::default();
        assert_eq!(cm.traffic_words(&s), 0);
        assert_eq!(cm.words_per_access(&s), 0.0);
    }

    #[test]
    fn fills_cost_a_block_updates_cost_a_word() {
        let cm = CostModel {
            block_words: 8,
            ctrl_words: 1,
        };
        let mut s = Stats::default();
        s.accesses = 10;
        s.bus_ops[BusOp::Read.index()] = 2; // 2 ctrl
        s.memory_fills = 2; // 16 payload
        assert_eq!(cm.traffic_words(&s), 2 + 16);

        let mut u = Stats::default();
        u.accesses = 10;
        u.bus_ops[BusOp::Update.index()] = 2; // 2 ctrl + 2 words
        assert_eq!(cm.traffic_words(&u), 4);
        assert!(cm.words_per_access(&u) < cm.words_per_access(&s));
    }

    #[test]
    fn writebacks_and_write_throughs_are_charged() {
        let cm = CostModel::default();
        let mut s = Stats::default();
        s.accesses = 1;
        s.bus_ops[BusOp::WriteBack.index()] = 1;
        s.writebacks = 1;
        assert_eq!(cm.traffic_words(&s), 1 + 8);
        let mut t = Stats::default();
        t.accesses = 1;
        t.bus_ops[BusOp::Upgrade.index()] = 1;
        t.through_writes = 1;
        assert_eq!(cm.traffic_words(&t), 1 + 1);
    }
}
