//! Execution statistics for simulation runs.

use ccv_model::BusOp;
use core::fmt;

/// Counters collected while executing a trace.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Processor accesses executed.
    pub accesses: usize,
    /// Loads.
    pub reads: usize,
    /// Stores.
    pub writes: usize,
    /// Accesses that hit a readable (or writable) copy.
    pub hits: usize,
    /// Accesses that missed (block absent or invalid).
    pub misses: usize,
    /// Bus transactions, by operation index (see [`BusOp::ALL`]).
    pub bus_ops: [usize; BusOp::COUNT],
    /// Copies invalidated by snooping.
    pub invalidations: usize,
    /// Copies updated in place by broadcast writes.
    pub updates_received: usize,
    /// Cache-to-cache block transfers.
    pub cache_supplies: usize,
    /// Fills served by main memory.
    pub memory_fills: usize,
    /// Write-backs to memory (replacements and snooped flushes).
    pub writebacks: usize,
    /// Replacements performed (capacity/conflict evictions).
    pub evictions: usize,
    /// Write-through stores (a one-word memory write rides the
    /// transaction).
    pub through_writes: usize,
}

impl Stats {
    /// Count of one bus operation.
    pub fn bus_count(&self, op: BusOp) -> usize {
        self.bus_ops[op.index()]
    }

    /// Total bus transactions.
    pub fn bus_total(&self) -> usize {
        self.bus_ops.iter().sum()
    }

    /// Miss ratio over all accesses.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Bus transactions per access — the contention proxy used by
    /// Archibald & Baer's protocol comparison.
    pub fn bus_per_access(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.bus_total() as f64 / self.accesses as f64
        }
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "accesses {} (R {} / W {}), hits {}, misses {} ({:.2}%)",
            self.accesses,
            self.reads,
            self.writes,
            self.hits,
            self.misses,
            100.0 * self.miss_ratio()
        )?;
        write!(f, "bus:")?;
        for op in BusOp::ALL {
            if self.bus_count(op) > 0 {
                write!(f, " {}={}", op, self.bus_count(op))?;
            }
        }
        writeln!(f, " (total {})", self.bus_total())?;
        write!(
            f,
            "inval {}, upd {}, c2c {}, memfill {}, wb {}, evict {}",
            self.invalidations,
            self.updates_received,
            self.cache_supplies,
            self.memory_fills,
            self.writebacks,
            self.evictions
        )
    }
}

#[cfg(test)]
#[allow(clippy::field_reassign_with_default)]
mod tests {
    use super::*;

    #[test]
    fn ratios_handle_zero() {
        let s = Stats::default();
        assert_eq!(s.miss_ratio(), 0.0);
        assert_eq!(s.bus_per_access(), 0.0);
        assert_eq!(s.bus_total(), 0);
    }

    #[test]
    fn counters_accumulate() {
        let mut s = Stats::default();
        s.accesses = 10;
        s.misses = 3;
        s.bus_ops[BusOp::Read.index()] = 4;
        s.bus_ops[BusOp::WriteBack.index()] = 1;
        assert_eq!(s.miss_ratio(), 0.3);
        assert_eq!(s.bus_total(), 5);
        assert_eq!(s.bus_per_access(), 0.5);
        assert_eq!(s.bus_count(BusOp::Read), 4);
        let text = s.to_string();
        assert!(text.contains("BusRd=4"), "{text}");
    }
}
