//! Text trace format: load and save access traces.
//!
//! One access per line, whitespace-separated:
//!
//! ```text
//! # comment lines and blank lines are skipped
//! P0 R 12      # processor 0 reads block 12
//! P3 W 0x1f    # processor 3 writes block 0x1f (hex accepted)
//! ```
//!
//! The format is the least common denominator of academic trace
//! formats — easy to generate from any tool and diff-friendly. The
//! processor count of the resulting [`Trace`] is `max(proc) + 1`.

use crate::trace::{Access, AccessKind, Trace};
use core::fmt;

/// A parse error with its line number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceParseError {}

fn parse_block(tok: &str) -> Option<u64> {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        tok.parse().ok()
    }
}

/// Parses the text format into a [`Trace`].
pub fn parse_trace(name: impl Into<String>, source: &str) -> Result<Trace, TraceParseError> {
    let mut accesses = Vec::new();
    let mut max_proc = 0usize;
    for (i, raw) in source.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut toks = line.split_whitespace();
        let err = |message: String| TraceParseError {
            line: line_no,
            message,
        };
        let proc_tok = toks.next().ok_or_else(|| err("missing processor".into()))?;
        let proc: usize = proc_tok
            .strip_prefix(['P', 'p'])
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| err(format!("bad processor '{proc_tok}' (expected e.g. P0)")))?;
        let kind_tok = toks
            .next()
            .ok_or_else(|| err("missing access kind".into()))?;
        let kind = match kind_tok {
            "R" | "r" | "read" => AccessKind::Read,
            "W" | "w" | "write" => AccessKind::Write,
            other => return Err(err(format!("bad access kind '{other}' (expected R or W)"))),
        };
        let block_tok = toks
            .next()
            .ok_or_else(|| err("missing block address".into()))?;
        let block =
            parse_block(block_tok).ok_or_else(|| err(format!("bad block '{block_tok}'")))?;
        if let Some(extra) = toks.next() {
            return Err(err(format!("trailing token '{extra}'")));
        }
        max_proc = max_proc.max(proc);
        accesses.push(Access { proc, block, kind });
    }
    Ok(Trace::new(name, max_proc + 1, accesses))
}

/// Serialises a trace into the text format (with a header comment).
pub fn format_trace(trace: &Trace) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — {} accesses, {} processors",
        trace.name,
        trace.len(),
        trace.procs
    );
    for a in &trace.accesses {
        let k = match a.kind {
            AccessKind::Read => 'R',
            AccessKind::Write => 'W',
        };
        let _ = writeln!(out, "P{} {k} {}", a.proc, a.block);
    }
    out
}

/// Reads a trace from a file.
pub fn load_trace(path: &str) -> Result<Trace, String> {
    let source = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("trace")
        .to_string();
    parse_trace(name, &source).map_err(|e| format!("{path}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_lines() {
        let t = parse_trace(
            "t",
            "# header\nP0 R 1\n\nP1 W 0x1f   # inline comment\n p2 read 7\n",
        )
        .unwrap();
        assert_eq!(t.procs, 3);
        assert_eq!(t.len(), 3);
        assert_eq!(t.accesses[0], Access::read(0, 1));
        assert_eq!(t.accesses[1], Access::write(1, 0x1f));
        assert_eq!(t.accesses[2], Access::read(2, 7));
    }

    #[test]
    fn roundtrips_through_format() {
        let original = Trace::new(
            "rt",
            2,
            vec![Access::read(0, 3), Access::write(1, 9), Access::read(1, 3)],
        );
        let text = format_trace(&original);
        let parsed = parse_trace("rt", &text).unwrap();
        assert_eq!(parsed.accesses, original.accesses);
        assert_eq!(parsed.procs, original.procs);
    }

    #[test]
    fn reports_bad_lines_with_numbers() {
        let err = parse_trace("t", "P0 R 1\nQ1 W 2\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("Q1"), "{err}");

        let err = parse_trace("t", "P0 X 1\n").unwrap_err();
        assert!(err.message.contains("access kind"), "{err}");

        let err = parse_trace("t", "P0 R zz\n").unwrap_err();
        assert!(err.message.contains("zz"), "{err}");

        let err = parse_trace("t", "P0 R 1 extra\n").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");

        let err = parse_trace("t", "P0\n").unwrap_err();
        assert!(err.message.contains("missing"), "{err}");
    }

    #[test]
    fn empty_source_is_an_empty_single_proc_trace() {
        let t = parse_trace("t", "# nothing\n").unwrap();
        assert!(t.is_empty());
        assert_eq!(t.procs, 1);
    }
}
