//! A set-associative private cache with per-line protocol state.
//!
//! Each processor owns one `Cache`. A line tracks the block address,
//! the protocol [`StateId`] and the *data version* — a monotonically
//! increasing stamp assigned by the machine at each store, which the
//! latest-value oracle compares against on every load. LRU replacement
//! within a set generates the protocol's `Replace` events, exercising
//! the `Z` transitions of the FSM.

use ccv_model::StateId;

/// One cache line.
#[derive(Clone, Copy, Debug)]
pub struct Line {
    /// Block address held by the line.
    pub block: u64,
    /// Protocol state of the block copy.
    pub state: StateId,
    /// Version stamp of the data held (latest-value oracle).
    pub version: u64,
    /// LRU tick of the last touch.
    lru: u64,
}

/// A set-associative, LRU, write-allocate cache.
#[derive(Clone, Debug)]
pub struct Cache {
    sets: usize,
    assoc: usize,
    lines: Vec<Option<Line>>, // sets × assoc
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with `sets` sets of `assoc` ways.
    pub fn new(sets: usize, assoc: usize) -> Cache {
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        assert!(assoc >= 1);
        Cache {
            sets,
            assoc,
            lines: vec![None; sets * assoc],
            tick: 0,
        }
    }

    #[inline]
    fn set_of(&self, block: u64) -> usize {
        (block as usize) & (self.sets - 1)
    }

    fn set_slice(&self, block: u64) -> std::ops::Range<usize> {
        let s = self.set_of(block);
        s * self.assoc..(s + 1) * self.assoc
    }

    /// Looks a block up; present lines are returned even in the invalid
    /// state (the caller decides whether invalid counts as a miss).
    pub fn lookup(&self, block: u64) -> Option<&Line> {
        self.lines[self.set_slice(block)]
            .iter()
            .flatten()
            .find(|l| l.block == block)
    }

    /// Mutable lookup; bumps LRU.
    pub fn lookup_mut(&mut self, block: u64) -> Option<&mut Line> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_slice(block);
        let line = self.lines[range]
            .iter_mut()
            .flatten()
            .find(|l| l.block == block)?;
        line.lru = tick;
        Some(line)
    }

    /// The protocol state of `block` (`Invalid` when absent — the
    /// paper folds "not present" into the invalid state, §2.1).
    pub fn state_of(&self, block: u64) -> StateId {
        self.lookup(block)
            .map(|l| l.state)
            .unwrap_or(StateId::INVALID)
    }

    /// Installs `block` in `state` with `version`, evicting the LRU
    /// victim of the set if necessary. Returns the evicted line (which
    /// the machine must put through a `Replace` transition) — `None`
    /// when a free or invalid way was available.
    ///
    /// Victim preference: an invalid line, then the true LRU line.
    pub fn install(&mut self, block: u64, state: StateId, version: u64) -> Option<Line> {
        self.tick += 1;
        let tick = self.tick;
        let range = self.set_slice(block);

        // Already present? Just update in place.
        if let Some(l) = self.lines[range.clone()]
            .iter_mut()
            .flatten()
            .find(|l| l.block == block)
        {
            l.state = state;
            l.version = version;
            l.lru = tick;
            return None;
        }

        // Free way or invalid line?
        let slot = {
            let slice = &self.lines[range.clone()];
            slice.iter().position(|l| l.is_none()).or_else(|| {
                slice
                    .iter()
                    .position(|l| l.is_some_and(|l| l.state.is_invalid()))
            })
        };
        if let Some(i) = slot {
            let idx = range.start + i;
            let evicted = self.lines[idx].take().filter(|l| !l.state.is_invalid());
            self.lines[idx] = Some(Line {
                block,
                state,
                version,
                lru: tick,
            });
            return evicted;
        }

        // LRU victim.
        let victim_i = {
            let slice = &self.lines[range.clone()];
            let mut best = 0usize;
            let mut best_lru = u64::MAX;
            for (i, l) in slice.iter().enumerate() {
                let lru = l.expect("set is full").lru;
                if lru < best_lru {
                    best_lru = lru;
                    best = i;
                }
            }
            best
        };
        let idx = range.start + victim_i;
        let victim = self.lines[idx].take();
        self.lines[idx] = Some(Line {
            block,
            state,
            version,
            lru: tick,
        });
        victim
    }

    /// Drops `block` from the cache (post-`Replace`, or snooped
    /// invalidation that removes the line entirely). Keeping an invalid
    /// line in place would also be correct; removal frees the way.
    pub fn drop_block(&mut self, block: u64) {
        let range = self.set_slice(block);
        for l in &mut self.lines[range] {
            if l.is_some_and(|l| l.block == block) {
                *l = None;
            }
        }
    }

    /// Iterates over present, non-invalid lines.
    pub fn valid_lines(&self) -> impl Iterator<Item = &Line> {
        self.lines
            .iter()
            .flatten()
            .filter(|l| !l.state.is_invalid())
    }

    /// Total capacity in lines.
    pub fn capacity(&self) -> usize {
        self.sets * self.assoc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S1: StateId = StateId(1);
    const S2: StateId = StateId(2);

    #[test]
    fn lookup_of_absent_block_is_invalid() {
        let c = Cache::new(4, 2);
        assert_eq!(c.state_of(99), StateId::INVALID);
        assert!(c.lookup(99).is_none());
    }

    #[test]
    fn install_and_lookup() {
        let mut c = Cache::new(4, 2);
        assert!(c.install(5, S1, 7).is_none());
        let l = c.lookup(5).unwrap();
        assert_eq!(l.state, S1);
        assert_eq!(l.version, 7);
        assert_eq!(c.state_of(5), S1);
    }

    #[test]
    fn reinstall_updates_in_place() {
        let mut c = Cache::new(4, 1);
        c.install(5, S1, 1);
        assert!(c.install(5, S2, 9).is_none(), "no eviction on update");
        assert_eq!(c.lookup(5).unwrap().version, 9);
        assert_eq!(c.state_of(5), S2);
    }

    #[test]
    fn conflicting_install_evicts_lru() {
        // One set, two ways: blocks 0, 4, 8 all map to set 0.
        let mut c = Cache::new(1, 2);
        c.install(0, S1, 1);
        c.install(4, S1, 2);
        // Touch block 0 so block 4 is LRU.
        let _ = c.lookup_mut(0);
        let evicted = c.install(8, S2, 3).expect("a victim must be evicted");
        assert_eq!(evicted.block, 4);
        assert!(c.lookup(0).is_some());
        assert!(c.lookup(8).is_some());
        assert!(c.lookup(4).is_none());
    }

    #[test]
    fn invalid_lines_are_preferred_victims() {
        let mut c = Cache::new(1, 2);
        c.install(0, S1, 1);
        c.install(4, S1, 2);
        c.lookup_mut(4).unwrap().state = StateId::INVALID;
        let evicted = c.install(8, S2, 3);
        assert!(evicted.is_none(), "invalid line absorbed silently");
        assert!(c.lookup(0).is_some());
    }

    #[test]
    fn drop_block_frees_the_way() {
        let mut c = Cache::new(1, 1);
        c.install(3, S1, 1);
        c.drop_block(3);
        assert!(c.lookup(3).is_none());
        assert!(c.install(7, S1, 2).is_none(), "way was freed");
    }

    #[test]
    fn valid_lines_excludes_invalid() {
        let mut c = Cache::new(2, 1);
        c.install(0, S1, 1);
        c.install(1, S1, 1);
        c.lookup_mut(1).unwrap().state = StateId::INVALID;
        assert_eq!(c.valid_lines().count(), 1);
        assert_eq!(c.capacity(), 2);
    }
}
