//! Synthetic workload generators.
//!
//! The sharing patterns used by multiprocessor cache studies since
//! Archibald & Baer's evaluation of these same protocols: uniform
//! random sharing, hot-block contention, producer–consumer flag
//! passing, migratory objects, and mostly-private working sets. Every
//! generator is deterministic in its seed, so simulation results are
//! reproducible.

use crate::trace::{Access, AccessKind, Trace};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Common generator parameters.
#[derive(Clone, Copy, Debug)]
pub struct WorkloadParams {
    /// Number of processors.
    pub procs: usize,
    /// Number of distinct blocks.
    pub blocks: u64,
    /// Number of accesses to generate.
    pub accesses: usize,
    /// Probability that an access is a store.
    pub write_ratio: f64,
    /// RNG seed.
    pub seed: u64,
}

impl WorkloadParams {
    /// Reasonable defaults: 4 processors, 64 blocks, 10 000 accesses,
    /// 30 % writes.
    pub fn new(procs: usize) -> WorkloadParams {
        WorkloadParams {
            procs,
            blocks: 64,
            accesses: 10_000,
            write_ratio: 0.3,
            seed: 0xCC5EED,
        }
    }

    fn rng(&self) -> StdRng {
        StdRng::seed_from_u64(self.seed)
    }

    fn kind(&self, rng: &mut StdRng) -> AccessKind {
        if rng.gen_bool(self.write_ratio) {
            AccessKind::Write
        } else {
            AccessKind::Read
        }
    }
}

/// Uniform random: every processor touches every block with equal
/// probability — maximal (unstructured) sharing.
pub fn uniform(p: &WorkloadParams) -> Trace {
    let mut rng = p.rng();
    let accesses = (0..p.accesses)
        .map(|_| Access {
            proc: rng.gen_range(0..p.procs),
            block: rng.gen_range(0..p.blocks),
            kind: p.kind(&mut rng),
        })
        .collect();
    Trace::new("uniform", p.procs, accesses)
}

/// Hot-block: 80 % of accesses hit a small hot set (one eighth of the
/// blocks), modelling contended shared structures.
pub fn hot_block(p: &WorkloadParams) -> Trace {
    let mut rng = p.rng();
    let hot = (p.blocks / 8).max(1);
    let accesses = (0..p.accesses)
        .map(|_| {
            let block = if rng.gen_bool(0.8) {
                rng.gen_range(0..hot)
            } else {
                rng.gen_range(hot..p.blocks.max(hot + 1))
            };
            Access {
                proc: rng.gen_range(0..p.procs),
                block,
                kind: p.kind(&mut rng),
            }
        })
        .collect();
    Trace::new("hot-block", p.procs, accesses)
}

/// Producer–consumer: processor 0 writes a block, every other
/// processor reads it, round after round — the pattern that rewards
/// write-update protocols.
pub fn producer_consumer(p: &WorkloadParams) -> Trace {
    let mut rng = p.rng();
    let mut accesses = Vec::with_capacity(p.accesses);
    let mut block = 0u64;
    while accesses.len() < p.accesses {
        accesses.push(Access::write(0, block));
        for proc in 1..p.procs {
            if accesses.len() >= p.accesses {
                break;
            }
            accesses.push(Access::read(proc, block));
        }
        if rng.gen_bool(0.25) {
            block = (block + 1) % p.blocks.max(1);
        }
    }
    Trace::new("producer-consumer", p.procs, accesses)
}

/// Migratory sharing: a block is read and then written in a burst
/// (a critical section) by one processor before migrating to the next
/// — the pattern that rewards ownership (write-invalidate) protocols:
/// after the first write the whole burst is silent, while write-update
/// protocols broadcast every store to the stale copies left behind.
pub fn migratory(p: &WorkloadParams) -> Trace {
    let mut rng = p.rng();
    let writes_per_visit = 8;
    let mut accesses = Vec::with_capacity(p.accesses);
    let mut proc = 0usize;
    let mut block = 0u64;
    while accesses.len() < p.accesses {
        accesses.push(Access::read(proc, block));
        for _ in 0..writes_per_visit {
            if accesses.len() >= p.accesses {
                break;
            }
            accesses.push(Access::write(proc, block));
        }
        proc = (proc + 1) % p.procs;
        if rng.gen_bool(0.1) {
            block = rng.gen_range(0..p.blocks.max(1));
        }
    }
    Trace::new("migratory", p.procs, accesses)
}

/// Mostly-private: each processor has its own partition of the blocks
/// and strays outside it rarely (5 %) — low sharing, replacement
/// pressure dominates.
pub fn mostly_private(p: &WorkloadParams) -> Trace {
    let mut rng = p.rng();
    let span = (p.blocks / p.procs as u64).max(1);
    let accesses = (0..p.accesses)
        .map(|_| {
            let proc = rng.gen_range(0..p.procs);
            let block = if rng.gen_bool(0.95) {
                let base = proc as u64 * span;
                base + rng.gen_range(0..span)
            } else {
                rng.gen_range(0..p.blocks)
            };
            Access {
                proc,
                block,
                kind: p.kind(&mut rng),
            }
        })
        .collect();
    Trace::new("mostly-private", p.procs, accesses)
}

/// Every generator, paired with its name — the set used by the E8
/// simulation experiment.
pub fn all_workloads(p: &WorkloadParams) -> Vec<Trace> {
    vec![
        uniform(p),
        hot_block(p),
        producer_consumer(p),
        migratory(p),
        mostly_private(p),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> WorkloadParams {
        WorkloadParams {
            procs: 4,
            blocks: 32,
            accesses: 1000,
            write_ratio: 0.3,
            seed: 42,
        }
    }

    #[test]
    fn generators_honour_access_count_and_procs() {
        for t in all_workloads(&params()) {
            assert_eq!(t.len(), 1000, "{}", t.name);
            assert!(t.accesses.iter().all(|a| a.proc < 4), "{}", t.name);
            assert!(t.accesses.iter().all(|a| a.block < 32), "{}", t.name);
        }
    }

    #[test]
    fn generators_are_deterministic_in_seed() {
        let a = uniform(&params());
        let b = uniform(&params());
        assert_eq!(a.accesses, b.accesses);
        let mut p2 = params();
        p2.seed = 43;
        let c = uniform(&p2);
        assert_ne!(a.accesses, c.accesses);
    }

    #[test]
    fn hot_block_concentrates_accesses() {
        let t = hot_block(&params());
        let hot = 32 / 8;
        let in_hot = t.accesses.iter().filter(|a| a.block < hot).count();
        assert!(
            in_hot > t.len() / 2,
            "hot set got {in_hot}/{} accesses",
            t.len()
        );
    }

    #[test]
    fn producer_consumer_has_single_writer() {
        let t = producer_consumer(&params());
        assert!(t
            .accesses
            .iter()
            .all(|a| a.kind == AccessKind::Read || a.proc == 0));
    }

    #[test]
    fn migratory_is_write_dominated() {
        let t = migratory(&params());
        // Eight writes per read by construction.
        let wr = t.write_ratio();
        assert!((0.8..=0.95).contains(&wr), "write ratio {wr}");
    }

    #[test]
    fn mostly_private_is_mostly_private() {
        let p = params();
        let t = mostly_private(&p);
        let span = 32 / 4;
        let own = t
            .accesses
            .iter()
            .filter(|a| a.block / span == a.proc as u64)
            .count();
        assert!(own as f64 > 0.85 * t.len() as f64);
    }
}
