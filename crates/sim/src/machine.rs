//! The simulated multiprocessor: private caches, an atomic snooping
//! bus, main memory and a latest-value oracle.
//!
//! The machine executes a [`Trace`] against a [`ProtocolSpec`] — the
//! *same* validated object the symbolic and enumerative verifiers
//! analyse. Every access becomes a processor event on the owning
//! cache; the resulting bus transaction is snooped by all other caches
//! exactly as the spec's snoop table dictates; data moves as the
//! spec's [`ccv_model::DataOp`] dictates, carried as monotonically
//! increasing *version stamps*.
//!
//! The **latest-value oracle** is the operational counterpart of the
//! paper's Definition 3: each store is assigned a fresh version and
//! recorded as the block's latest; every load compares the version it
//! observes against that record. A mismatch is a coherence violation —
//! verified protocols must produce none on any trace, and the buggy
//! mutants must produce some (experiment E8).

use crate::cache::Cache;
use crate::stats::Stats;
use crate::trace::{Access, AccessKind, Trace};
use ccv_model::{BusOp, DataOp, GlobalCtx, ProcEvent, ProtocolSpec, StateId};
use ccv_observe::{CommonOptions, Counter, EventSink, Phase, SinkHandle, SpanKind};
use std::collections::HashMap;
use std::sync::Arc;

/// Machine geometry and run options.
///
/// Construct via [`MachineConfig::small`] / [`MachineConfig::tiny`]
/// and refine with the builder methods; the struct is
/// `#[non_exhaustive]` so new knobs can be added compatibly.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct MachineConfig {
    /// Number of processors (= private caches).
    pub procs: usize,
    /// Sets per cache (power of two).
    pub sets: usize,
    /// Ways per set.
    pub assoc: usize,
    /// Cross-engine options (event sink, stop-at-first-error).
    ///
    /// The budget field is unused here: a run executes exactly the
    /// trace it is given.
    pub common: CommonOptions,
}

impl MachineConfig {
    /// A small default machine: 4 processors, 64-set 2-way caches.
    pub fn small(procs: usize) -> MachineConfig {
        MachineConfig {
            procs,
            sets: 64,
            assoc: 2,
            common: CommonOptions::default(),
        }
    }

    /// A tiny machine whose caches conflict readily — useful to
    /// exercise replacements.
    pub fn tiny(procs: usize) -> MachineConfig {
        MachineConfig {
            procs,
            sets: 2,
            assoc: 1,
            common: CommonOptions::default(),
        }
    }

    /// Sets the cache geometry (sets per cache, ways per set).
    pub fn geometry(mut self, sets: usize, assoc: usize) -> MachineConfig {
        self.sets = sets;
        self.assoc = assoc;
        self
    }

    /// Stops a [`Machine::run`] at the first oracle violation.
    pub fn stop_at_first_error(mut self, stop: bool) -> MachineConfig {
        self.common.stop_at_first_error = stop;
        self
    }

    /// Attaches an event sink (phase timing, access/bus counters).
    pub fn sink(mut self, sink: impl Into<SinkHandle>) -> MachineConfig {
        self.common.sink = sink.into();
        self
    }

    /// Attaches an event sink given as a trait object.
    pub fn with_sink(self, sink: Arc<dyn EventSink>) -> MachineConfig {
        self.sink(SinkHandle::new(sink))
    }

    /// Replaces the whole cross-engine option block.
    pub fn common(mut self, common: CommonOptions) -> MachineConfig {
        self.common = common;
        self
    }
}

/// A latest-value oracle violation: a load observed a version other
/// than the most recent store to the block.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoherenceViolation {
    /// Index of the access in the trace.
    pub access_index: usize,
    /// The offending access.
    pub access: Access,
    /// Version the load observed.
    pub got: u64,
    /// Version of the latest store.
    pub expected: u64,
}

/// Report of a completed run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// Workload name.
    pub workload: String,
    /// Execution statistics.
    pub stats: Stats,
    /// Oracle violations (empty for a coherent run).
    pub violations: Vec<CoherenceViolation>,
}

impl RunReport {
    /// True iff every load returned the latest stored value.
    pub fn is_coherent(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Coherence status of one block across the machine (see
/// [`Machine::snapshot_block`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockSnapshot {
    /// Per-processor `(protocol state, copy holds the latest value)`.
    pub caches: Vec<(StateId, bool)>,
    /// Memory holds the latest value.
    pub memory_fresh: bool,
}

/// The simulated multiprocessor.
pub struct Machine {
    spec: ProtocolSpec,
    cfg: MachineConfig,
    caches: Vec<Cache>,
    /// Memory version per block (absent = 0, the initial value).
    memory: HashMap<u64, u64>,
    /// Oracle: latest stored version per block (absent = 0).
    latest: HashMap<u64, u64>,
    next_version: u64,
    stats: Stats,
    violations: Vec<CoherenceViolation>,
    access_index: usize,
}

impl Machine {
    /// Builds a machine running `spec`.
    ///
    /// # Panics
    ///
    /// The simulated bus is atomic: an access's bus transaction
    /// completes before the next access runs, so transient states can
    /// never be observed and their stall semantics would wedge the
    /// machine. Protocols with transient states are therefore
    /// rejected here; callers exposed to untrusted input must check
    /// [`ProtocolSpec::has_transients`] first.
    pub fn new(spec: ProtocolSpec, cfg: MachineConfig) -> Machine {
        assert!(cfg.procs >= 1);
        assert!(
            !spec.has_transients(),
            "protocol '{}' has transient states; the trace simulator models an atomic bus",
            spec.name()
        );
        Machine {
            caches: (0..cfg.procs)
                .map(|_| Cache::new(cfg.sets, cfg.assoc))
                .collect(),
            spec,
            cfg,
            memory: HashMap::new(),
            latest: HashMap::new(),
            next_version: 0,
            stats: Stats::default(),
            violations: Vec::new(),
            access_index: 0,
        }
    }

    /// The protocol under execution.
    pub fn spec(&self) -> &ProtocolSpec {
        &self.spec
    }

    /// Statistics so far.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Number of processors.
    pub fn procs(&self) -> usize {
        self.cfg.procs
    }

    /// Snapshot of one block's coherence status across the machine:
    /// per-processor `(protocol state, data is latest)` plus
    /// `(memory is latest, block was ever written)`.
    ///
    /// This is the bridge to the verifiers: a snapshot translates
    /// directly into the augmented global state of Definition 4
    /// (`version == latest` ⇔ `fresh`), which lets tests certify at
    /// run time that the executing machine never leaves the family of
    /// states the symbolic engine proved reachable-and-safe
    /// (Theorem 1 as a runtime monitor).
    pub fn snapshot_block(&self, block: u64) -> BlockSnapshot {
        let latest = self.latest.get(&block).copied().unwrap_or(0);
        let caches = (0..self.cfg.procs)
            .map(|p| {
                let state = self.caches[p].state_of(block);
                let fresh = self.caches[p]
                    .lookup(block)
                    .map(|l| l.version == latest)
                    .unwrap_or(false);
                (state, fresh)
            })
            .collect();
        BlockSnapshot {
            caches,
            memory_fresh: self.mem_version(block) == latest,
        }
    }

    /// Every block the machine has touched (cached or written).
    pub fn touched_blocks(&self) -> Vec<u64> {
        let mut blocks: Vec<u64> = self.latest.keys().copied().collect();
        for c in &self.caches {
            blocks.extend(c.valid_lines().map(|l| l.block));
        }
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }

    /// Executes a whole trace and reports.
    ///
    /// With `stop_at_first_error` set in the config, execution stops
    /// after the access that produced the first oracle violation.
    pub fn run(&mut self, trace: &Trace) -> RunReport {
        assert!(
            trace.procs <= self.cfg.procs,
            "trace assumes {} processors, machine has {}",
            trace.procs,
            self.cfg.procs
        );
        // Cached once for the whole trace; never re-queried per access.
        let events = self.cfg.common.sink.is_enabled();
        self.cfg.common.sink.phase_enter(Phase::Simulate);
        if events {
            self.cfg.common.sink.span_begin(SpanKind::WorkerBusy, 0);
        }
        let violations_before = self.violations.len();
        for &a in &trace.accesses {
            self.step(a);
            if self.cfg.common.stop_at_first_error && self.violations.len() > violations_before {
                break;
            }
        }
        let sink = &self.cfg.common.sink;
        if events {
            sink.span_end(SpanKind::WorkerBusy, 0);
            let new_violations = self.violations.len() - violations_before;
            if new_violations > 0 {
                sink.count(Counter::Errors, new_violations as u64);
            }
            sink.progress(&format!(
                "trace '{}': {} accesses, {} hits, {} bus ops, {} violations",
                trace.name,
                self.stats.accesses,
                self.stats.hits,
                self.stats.bus_ops.iter().sum::<usize>(),
                self.violations.len()
            ));
        }
        sink.phase_exit(Phase::Simulate);
        RunReport {
            workload: trace.name.clone(),
            stats: self.stats.clone(),
            violations: self.violations.clone(),
        }
    }

    /// The sharing-detection context observed by `proc` for `block`.
    fn context_of(&self, proc: usize, block: u64) -> GlobalCtx {
        let mut others = false;
        let mut owner = false;
        for (j, c) in self.caches.iter().enumerate() {
            if j == proc {
                continue;
            }
            let s = c.state_of(block);
            let attrs = self.spec.attrs(s);
            others |= attrs.holds_copy;
            owner |= attrs.owned;
        }
        GlobalCtx {
            others_hold_copy: others,
            owner_exists: owner,
        }
    }

    fn mem_version(&self, block: u64) -> u64 {
        self.memory.get(&block).copied().unwrap_or(0)
    }

    /// Executes one access.
    pub fn step(&mut self, access: Access) {
        let idx = self.access_index;
        self.access_index += 1;
        let proc = access.proc;
        let block = access.block;
        assert!(proc < self.cfg.procs, "access for unknown processor");

        let state = self.caches[proc].state_of(block);
        let event = match access.kind {
            AccessKind::Read => ProcEvent::Read,
            AccessKind::Write => ProcEvent::Write,
        };
        self.stats.accesses += 1;
        match access.kind {
            AccessKind::Read => self.stats.reads += 1,
            AccessKind::Write => self.stats.writes += 1,
        }
        self.cfg.common.sink.count(Counter::Accesses, 1);

        let ctx = self.context_of(proc, block);
        let outcome = self.spec.outcome(state, event, ctx);
        if self.spec.attrs(state).holds_copy {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }

        // A store mints a fresh version and becomes the block's latest.
        let store = outcome.data.is_store();
        let new_version = if store {
            self.next_version += 1;
            self.latest.insert(block, self.next_version);
            Some(self.next_version)
        } else {
            None
        };

        // Broadcast the bus transaction to every other cache.
        let wants_fill = outcome.data.is_fill();
        let mut supplier_version: Option<u64> = None;
        if let Some(bus) = outcome.bus {
            self.stats.bus_ops[bus.index()] += 1;
            self.cfg.common.sink.bus_transaction(bus.mnemonic());
            for j in 0..self.cfg.procs {
                if j == proc {
                    continue;
                }
                let snoop_state = self.caches[j].state_of(block);
                if snoop_state.is_invalid() {
                    continue;
                }
                let sn = self.spec.snoop(snoop_state, bus);
                let line = self.caches[j]
                    .lookup_mut(block)
                    .expect("non-invalid state implies a present line");
                let line_version = line.version;
                if sn.flushes_to_memory {
                    self.memory.insert(block, line_version);
                    self.stats.writebacks += 1;
                }
                if sn.supplies_data && wants_fill && supplier_version.is_none() {
                    // Deterministic policy: the lowest-index supplier
                    // wins the bus arbitration; one transfer per
                    // transaction regardless of how many assert.
                    self.stats.cache_supplies += 1;
                    supplier_version = Some(line_version);
                }
                let line = self.caches[j].lookup_mut(block).unwrap();
                line.state = sn.next;
                if sn.receives_update {
                    if let Some(v) = new_version {
                        line.version = v;
                        self.stats.updates_received += 1;
                    }
                }
                if sn.next.is_invalid() {
                    self.stats.invalidations += 1;
                    self.caches[j].drop_block(block);
                }
            }
        }

        // Memory effect of the originator's data operation.
        match outcome.data {
            DataOp::Write { through: true, .. } => {
                self.memory
                    .insert(block, new_version.expect("store minted a version"));
                self.stats.through_writes += 1;
            }
            DataOp::Write { .. } => {
                // Write-back: memory keeps its (now stale) version.
            }
            _ => {}
        }

        // Resolve the fill source (flushes above already updated
        // memory, matching the atomic-transaction ordering of §2.4).
        let fill_version = if outcome.data.is_fill() {
            Some(match supplier_version {
                Some(v) => v,
                None => {
                    self.stats.memory_fills += 1;
                    self.mem_version(block)
                }
            })
        } else {
            None
        };

        // The originator's own line.
        match outcome.data {
            DataOp::Read { fill } => {
                let version = if fill {
                    fill_version.expect("fill resolved")
                } else {
                    self.caches[proc]
                        .lookup(block)
                        .expect("read hit implies a line")
                        .version
                };
                self.oracle_check(idx, access, version);
                self.finish_install(proc, block, outcome.next, version);
            }
            DataOp::Write { .. } => {
                let v = new_version.expect("store minted a version");
                self.finish_install(proc, block, outcome.next, v);
            }
            DataOp::None => {
                // No data movement; still apply the state change.
                if let Some(line) = self.caches[proc].lookup_mut(block) {
                    line.state = outcome.next;
                }
            }
            DataOp::Evict { .. } => {
                unreachable!("processor accesses never carry Evict; replacements are internal")
            }
        }
    }

    /// Installs the originator's line, running the protocol `Replace`
    /// transition for any conflict victim the installation displaces.
    fn finish_install(&mut self, proc: usize, block: u64, state: StateId, version: u64) {
        if state.is_invalid() {
            self.caches[proc].drop_block(block);
            return;
        }
        if let Some(victim) = self.caches[proc].install(block, state, version) {
            self.replace_line(proc, victim.block, victim.state, victim.version);
        }
    }

    /// Runs the protocol's `Replace` event for an evicted line.
    fn replace_line(&mut self, proc: usize, block: u64, state: StateId, version: u64) {
        self.stats.evictions += 1;
        let ctx = self.context_of(proc, block);
        let outcome = self.spec.outcome(state, ProcEvent::Replace, ctx);
        if let Some(bus) = outcome.bus {
            self.stats.bus_ops[bus.index()] += 1;
            self.cfg.common.sink.bus_transaction(bus.mnemonic());
            debug_assert_eq!(bus, BusOp::WriteBack, "replacements only write back");
        }
        if let DataOp::Evict { writeback: true } = outcome.data {
            self.memory.insert(block, version);
            self.stats.writebacks += 1;
        }
        // The line itself was already removed by `Cache::install`.
    }

    /// Oracle check: a load must observe the latest stored version.
    fn oracle_check(&mut self, idx: usize, access: Access, got: u64) {
        self.cfg.common.sink.count(Counter::OracleChecks, 1);
        let expected = self.latest.get(&access.block).copied().unwrap_or(0);
        if got != expected {
            self.cfg.common.sink.violation(&format!(
                "access #{idx}: proc {} read v{got} from block {}, latest write was v{expected}",
                access.proc, access.block
            ));
            self.violations.push(CoherenceViolation {
                access_index: idx,
                access,
                got,
                expected,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::protocols::{berkeley, dragon, illinois, illinois_missing_invalidation, msi};

    fn run(spec: ccv_model::ProtocolSpec, accesses: Vec<Access>, procs: usize) -> RunReport {
        let mut m = Machine::new(spec, MachineConfig::small(procs));
        m.run(&Trace::new("test", procs, accesses))
    }

    #[test]
    fn private_reads_and_writes_are_coherent() {
        let r = run(
            illinois(),
            vec![
                Access::write(0, 1),
                Access::read(0, 1),
                Access::write(0, 1),
                Access::read(0, 1),
            ],
            2,
        );
        assert!(r.is_coherent(), "{:?}", r.violations);
        assert_eq!(r.stats.misses, 1, "only the first access misses");
    }

    #[test]
    fn producer_consumer_sees_latest_value() {
        let r = run(
            illinois(),
            vec![
                Access::write(0, 7),
                Access::read(1, 7),
                Access::write(1, 7),
                Access::read(0, 7),
            ],
            2,
        );
        assert!(r.is_coherent(), "{:?}", r.violations);
    }

    #[test]
    fn illinois_read_sharing_uses_cache_to_cache_transfer() {
        let r = run(
            illinois(),
            vec![Access::read(0, 3), Access::read(1, 3), Access::read(2, 3)],
            3,
        );
        assert!(r.is_coherent());
        assert_eq!(r.stats.cache_supplies, 2, "V-Ex then Shared supply");
        assert_eq!(r.stats.memory_fills, 1, "only the first fill from memory");
    }

    #[test]
    fn msi_shared_readers_fill_from_memory() {
        let r = run(msi(), vec![Access::read(0, 3), Access::read(1, 3)], 2);
        assert!(r.is_coherent());
        assert_eq!(r.stats.memory_fills, 2, "MSI has no cache-to-cache supply");
    }

    #[test]
    fn write_invalidation_counted() {
        let r = run(
            illinois(),
            vec![Access::read(0, 3), Access::read(1, 3), Access::write(0, 3)],
            2,
        );
        assert!(r.is_coherent());
        assert_eq!(r.stats.invalidations, 1);
    }

    #[test]
    fn dragon_updates_instead_of_invalidating() {
        let r = run(
            dragon(),
            vec![
                Access::read(0, 3),
                Access::read(1, 3),
                Access::write(0, 3),
                Access::read(1, 3), // must see the broadcast value
            ],
            2,
        );
        assert!(r.is_coherent(), "{:?}", r.violations);
        assert_eq!(r.stats.invalidations, 0);
        assert_eq!(r.stats.updates_received, 1);
    }

    #[test]
    fn berkeley_owner_serves_misses_without_memory_update() {
        let r = run(
            berkeley(),
            vec![Access::write(0, 3), Access::read(1, 3), Access::read(1, 3)],
            2,
        );
        assert!(r.is_coherent(), "{:?}", r.violations);
        assert!(r.stats.cache_supplies >= 1);
    }

    #[test]
    fn conflict_evictions_write_back_dirty_data() {
        // Tiny 2-set direct-mapped cache: blocks 0 and 2 collide.
        let spec = illinois();
        let mut m = Machine::new(spec, MachineConfig::tiny(2));
        let t = Trace::new(
            "conflict",
            2,
            vec![
                Access::write(0, 0), // Dirty block 0
                Access::read(0, 2),  // evicts block 0 (write-back)
                Access::read(1, 0),  // must read the written value from memory
            ],
        );
        let r = m.run(&t);
        assert!(r.is_coherent(), "{:?}", r.violations);
        assert!(r.stats.evictions >= 1);
        assert!(r.stats.writebacks >= 1);
    }

    #[test]
    fn buggy_protocol_violates_the_oracle() {
        let r = run(
            illinois_missing_invalidation(),
            vec![
                Access::read(0, 3),
                Access::read(1, 3),
                Access::write(0, 3), // cache 1 keeps its stale copy
                Access::read(1, 3),  // stale read
            ],
            2,
        );
        assert!(!r.is_coherent(), "the seeded bug must surface");
        assert_eq!(r.violations[0].access, Access::read(1, 3));
    }

    #[test]
    fn stats_accumulate_over_runs() {
        let mut m = Machine::new(illinois(), MachineConfig::small(2));
        m.run(&Trace::new("a", 2, vec![Access::read(0, 1)]));
        let r2 = m.run(&Trace::new("b", 2, vec![Access::read(1, 1)]));
        assert_eq!(r2.stats.accesses, 2);
    }
}
