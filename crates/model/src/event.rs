//! Processor events — the operation alphabet `Σ` of the protocol FSM.
//!
//! Following the paper (§2.3), `Σ = {R, W, Rep}`: the local processor
//! reads the block, writes the block, or the cache replaces (evicts) it.
//! All three engines (symbolic, enumerative, trace simulator) drive
//! protocol transitions exclusively through these events; bus-induced
//! state changes in *other* caches are the coincident snoop reactions of
//! [`crate::bus`].

use core::fmt;

/// A stimulus applied to one cache of the global system.
///
/// The first three variants are the paper's processor alphabet `Σ`.
/// `Complete` is *not* part of `Σ`: it is the bus-grant stimulus of a
/// split-transaction (non-atomic) protocol, fired when a cache sitting
/// in a transient state finally wins the bus and performs the pending
/// transaction. Atomic protocols never see it, and it is deliberately
/// excluded from [`ProcEvent::ALL`]/[`ProcEvent::COUNT`] so that every
/// table and rule-id scheme over `Σ` is unchanged.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcEvent {
    /// The local processor loads from the block (`R`).
    Read,
    /// The local processor stores to the block (`W`).
    Write,
    /// The cache evicts the block (`Rep`), e.g. due to a conflict miss.
    Replace,
    /// A transient state's pending bus transaction is granted and
    /// completes (`C`). Only meaningful for non-atomic protocols.
    Complete,
}

impl ProcEvent {
    /// All *processor* events, in canonical order. The order is stable
    /// and matches the dense indices used by transition tables.
    /// [`ProcEvent::Complete`] is not a processor event and is absent.
    pub const ALL: [ProcEvent; 3] = [ProcEvent::Read, ProcEvent::Write, ProcEvent::Replace];

    /// Number of distinct processor events (`|Σ|`).
    pub const COUNT: usize = 3;

    /// Dense index of this event. The processor events index their
    /// position in [`ProcEvent::ALL`]; `Complete` extends the sequence
    /// with index 3 (used only by completion rule ids, never as a
    /// `proc_table` subscript).
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ProcEvent::Read => 0,
            ProcEvent::Write => 1,
            ProcEvent::Replace => 2,
            ProcEvent::Complete => 3,
        }
    }

    /// The single-letter label used by the paper in transition diagrams
    /// (Fig. 4 and Appendix A.2): `R`, `W`, `Z` (the paper uses `Z` for
    /// replacement in Fig. 4). Completion, which the paper's atomic
    /// model has no symbol for, renders as `C`.
    pub fn label(self) -> &'static str {
        match self {
            ProcEvent::Read => "R",
            ProcEvent::Write => "W",
            ProcEvent::Replace => "Z",
            ProcEvent::Complete => "C",
        }
    }
}

impl fmt::Display for ProcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, e) in ProcEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
        assert_eq!(ProcEvent::ALL.len(), ProcEvent::COUNT);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProcEvent::Read.to_string(), "R");
        assert_eq!(ProcEvent::Write.to_string(), "W");
        assert_eq!(ProcEvent::Replace.to_string(), "Z");
    }

    #[test]
    fn complete_is_outside_the_processor_alphabet() {
        assert!(!ProcEvent::ALL.contains(&ProcEvent::Complete));
        assert_eq!(ProcEvent::Complete.index(), ProcEvent::COUNT);
        assert_eq!(ProcEvent::Complete.to_string(), "C");
    }
}
