//! Processor events — the operation alphabet `Σ` of the protocol FSM.
//!
//! Following the paper (§2.3), `Σ = {R, W, Rep}`: the local processor
//! reads the block, writes the block, or the cache replaces (evicts) it.
//! All three engines (symbolic, enumerative, trace simulator) drive
//! protocol transitions exclusively through these events; bus-induced
//! state changes in *other* caches are the coincident snoop reactions of
//! [`crate::bus`].

use core::fmt;

/// A processor-initiated operation on the tracked block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcEvent {
    /// The local processor loads from the block (`R`).
    Read,
    /// The local processor stores to the block (`W`).
    Write,
    /// The cache evicts the block (`Rep`), e.g. due to a conflict miss.
    Replace,
}

impl ProcEvent {
    /// All events, in canonical order. The order is stable and matches
    /// the dense indices used by transition tables.
    pub const ALL: [ProcEvent; 3] = [ProcEvent::Read, ProcEvent::Write, ProcEvent::Replace];

    /// Number of distinct events (`|Σ|`).
    pub const COUNT: usize = 3;

    /// Dense index of this event in [`ProcEvent::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            ProcEvent::Read => 0,
            ProcEvent::Write => 1,
            ProcEvent::Replace => 2,
        }
    }

    /// The single-letter label used by the paper in transition diagrams
    /// (Fig. 4 and Appendix A.2): `R`, `W`, `Z` (the paper uses `Z` for
    /// replacement in Fig. 4).
    pub fn label(self) -> &'static str {
        match self {
            ProcEvent::Read => "R",
            ProcEvent::Write => "W",
            ProcEvent::Replace => "Z",
        }
    }
}

impl fmt::Display for ProcEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, e) in ProcEvent::ALL.iter().enumerate() {
            assert_eq!(e.index(), i);
        }
        assert_eq!(ProcEvent::ALL.len(), ProcEvent::COUNT);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(ProcEvent::Read.to_string(), "R");
        assert_eq!(ProcEvent::Write.to_string(), "W");
        assert_eq!(ProcEvent::Replace.to_string(), "Z");
    }
}
