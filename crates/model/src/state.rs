//! Cache state symbols and their semantic attributes.
//!
//! A coherence protocol is a deterministic FSM `M = (Q, Σ, F, δ)`
//! (Definition 1 of the paper). This module defines the representation of
//! `Q`: a small, dense set of state symbols, each carrying *semantic
//! attributes* that give the symbol its protocol-independent meaning
//! (ownership, exclusivity, presence). The attributes drive the
//! protocol-generic *structural* permissibility checks of §2.1: e.g. two
//! caches in an `exclusive` state, or an `exclusive` copy coexisting with
//! any other copy, are contradictions regardless of the protocol.

use core::fmt;

/// Identifier of a cache state symbol within a [`crate::ProtocolSpec`].
///
/// States are densely numbered from zero; by convention index `0` is the
/// `Invalid` state (block not present, or present but invalidated — the
/// paper folds both cases into a single *invalid* notion, §2.1).
///
/// The representation is a `u8` so that a concrete global state of up to
/// 16 caches packs into a single `u64` (4 bits per cache) in the
/// enumerative engine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(pub u8);

impl StateId {
    /// The conventional identifier of the invalid state.
    pub const INVALID: StateId = StateId(0);

    /// Returns the dense index of this state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// True iff this is the conventional invalid state.
    #[inline]
    pub fn is_invalid(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

impl From<u8> for StateId {
    fn from(v: u8) -> Self {
        StateId(v)
    }
}

/// Protocol-independent semantic attributes of a cache state symbol.
///
/// The paper (§2.1) observes that "each cache state carries some semantic
/// interpretation", and that the primary verification procedure searches
/// for global states in which those interpretations contradict each
/// other. Encoding the interpretation as data lets the verifier derive
/// the contradiction predicates instead of hard-coding them per protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct StateAttrs {
    /// The block is present and readable by the local processor.
    ///
    /// `false` exactly for the invalid state. The paper's
    /// *sharing-detection* characteristic function counts caches whose
    /// state has `holds_copy == true`.
    pub holds_copy: bool,

    /// This copy is the *owner*: main memory may be stale with respect to
    /// it, and the protocol relies on this cache to supply the block
    /// and/or write it back. Examples: Illinois `Dirty`, Berkeley
    /// `Owned-Exclusively` and `Owned-NonExclusively`, Dragon
    /// `Shared-Dirty`.
    ///
    /// Structural invariant: at most one owned copy per block.
    pub owned: bool,

    /// The protocol guarantees that no *other* cache holds a copy while a
    /// cache is in this state. Examples: Illinois `Valid-Exclusive` and
    /// `Dirty`, Dragon `Dirty`.
    ///
    /// Structural invariant: a cache in an exclusive state may not
    /// coexist with any other copy.
    pub exclusive: bool,

    /// The local processor may write this copy without any bus
    /// transaction (a "silent" write hit). Examples: `Dirty` states.
    /// Used by the simulator for statistics and by spec validation
    /// (a silent write in a non-exclusive, non-owned state is almost
    /// certainly a specification bug).
    pub writable_silently: bool,
}

impl StateAttrs {
    /// Attributes of the conventional invalid state.
    pub const INVALID: StateAttrs = StateAttrs {
        holds_copy: false,
        owned: false,
        exclusive: false,
        writable_silently: false,
    };

    /// A clean, potentially shared copy (e.g. Illinois `Shared`).
    pub const SHARED_CLEAN: StateAttrs = StateAttrs {
        holds_copy: true,
        owned: false,
        exclusive: false,
        writable_silently: false,
    };

    /// A clean copy guaranteed to be the only cached copy
    /// (e.g. Illinois `Valid-Exclusive`).
    pub const VALID_EXCLUSIVE: StateAttrs = StateAttrs {
        holds_copy: true,
        owned: false,
        exclusive: true,
        writable_silently: false,
    };

    /// A modified copy guaranteed to be the only cached copy
    /// (e.g. Illinois `Dirty`).
    pub const DIRTY: StateAttrs = StateAttrs {
        holds_copy: true,
        owned: true,
        exclusive: true,
        writable_silently: true,
    };

    /// A modified copy that may coexist with clean copies
    /// (e.g. Berkeley `Owned-NonExclusively`, Dragon `Shared-Dirty`).
    pub const OWNED_SHARED: StateAttrs = StateAttrs {
        holds_copy: true,
        owned: true,
        exclusive: false,
        writable_silently: false,
    };
}

/// A named cache state symbol with its attributes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateInfo {
    /// Human-readable name, e.g. `"Valid-Exclusive"`.
    pub name: String,
    /// Short name used in composite-state rendering, e.g. `"V-Ex"`.
    pub short: String,
    /// Semantic attributes.
    pub attrs: StateAttrs,
}

impl StateInfo {
    /// Creates a new state description.
    pub fn new(name: impl Into<String>, short: impl Into<String>, attrs: StateAttrs) -> Self {
        StateInfo {
            name: name.into(),
            short: short.into(),
            attrs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn invalid_state_id_is_zero() {
        assert!(StateId::INVALID.is_invalid());
        assert_eq!(StateId::INVALID.index(), 0);
        assert!(!StateId(1).is_invalid());
    }

    #[test]
    fn state_id_debug_is_compact() {
        assert_eq!(format!("{:?}", StateId(3)), "q3");
    }

    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn canned_attrs_are_consistent() {
        assert!(!StateAttrs::INVALID.holds_copy);
        assert!(StateAttrs::SHARED_CLEAN.holds_copy);
        assert!(!StateAttrs::SHARED_CLEAN.exclusive);
        assert!(StateAttrs::VALID_EXCLUSIVE.exclusive);
        assert!(!StateAttrs::VALID_EXCLUSIVE.owned);
        assert!(StateAttrs::DIRTY.owned && StateAttrs::DIRTY.exclusive);
        assert!(StateAttrs::OWNED_SHARED.owned && !StateAttrs::OWNED_SHARED.exclusive);
    }

    #[test]
    fn from_u8_roundtrip() {
        let s: StateId = 5u8.into();
        assert_eq!(s, StateId(5));
    }
}
