//! Bus transactions and snoop reactions.
//!
//! The paper models the effect of one cache's operation on all other
//! caches as *coincident transitions* (expansion rule 2, §3.2.3): "all
//! caches in state `q₁` change state coincidentally following a
//! transition originated by another cache". In a snooping protocol the
//! physical mechanism for this is a broadcast **bus transaction**; every
//! other cache controller *snoops* the transaction and reacts according
//! to its current state.
//!
//! We make the bus transaction explicit in the model because (a) it is
//! how real protocol specifications are written, (b) it lets one snoop
//! table serve the symbolic engine, the enumerative engine and the trace
//! simulator, and (c) data movement (who supplies the block, who flushes
//! to memory) attaches naturally to the snoop side.

use crate::state::StateId;
use core::fmt;

/// A broadcast bus transaction, observed by all caches other than the
/// originator (and by the memory controller).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BusOp {
    /// Read miss: the originator requests the block for reading
    /// (`BusRd`). Other caches may supply the block and/or degrade to a
    /// shared state; an owner may flush to memory.
    Read,
    /// Write miss / read-for-ownership: the originator requests the
    /// block for writing (`BusRdX`). All other copies are invalidated.
    ReadX,
    /// Invalidation without data transfer (`BusUpgr`): the originator
    /// already holds the block and acquires write permission.
    Upgrade,
    /// Write-update broadcast (`BusUpd`): the originator distributes the
    /// newly written word; other caches holding the block update their
    /// copies in place (Firefly, Dragon).
    Update,
    /// Write-back of a modified block to memory (`BusWB`). Snoopers
    /// ignore it; the memory controller absorbs the data.
    WriteBack,
}

impl BusOp {
    /// All bus operations, in canonical order (dense table index).
    pub const ALL: [BusOp; 5] = [
        BusOp::Read,
        BusOp::ReadX,
        BusOp::Upgrade,
        BusOp::Update,
        BusOp::WriteBack,
    ];

    /// Number of distinct bus operations.
    pub const COUNT: usize = 5;

    /// Dense index of this operation in [`BusOp::ALL`].
    #[inline]
    pub fn index(self) -> usize {
        match self {
            BusOp::Read => 0,
            BusOp::ReadX => 1,
            BusOp::Upgrade => 2,
            BusOp::Update => 3,
            BusOp::WriteBack => 4,
        }
    }

    /// Conventional mnemonic, e.g. `BusRd`.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BusOp::Read => "BusRd",
            BusOp::ReadX => "BusRdX",
            BusOp::Upgrade => "BusUpgr",
            BusOp::Update => "BusUpd",
            BusOp::WriteBack => "BusWB",
        }
    }
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// The reaction of a snooping cache (in a given state) to a bus
/// transaction.
///
/// This is the per-cache ingredient of the paper's *coincident
/// transition* rule: when a transaction hits the bus, **every** other
/// cache in state `q` moves to `next` simultaneously.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SnoopOutcome {
    /// The snooping cache's next state.
    pub next: StateId,
    /// The snooping cache supplies the block to the requester
    /// (cache-to-cache transfer). If several snoopers can supply, the
    /// protocol semantics say any one of them may; the verifier branches
    /// over all distinct-freshness suppliers.
    pub supplies_data: bool,
    /// The snooping cache writes its copy back to memory as part of this
    /// transaction (e.g. a Dirty cache flushing on a `BusRd` in Illinois,
    /// or Synapse's abort-and-write-back).
    pub flushes_to_memory: bool,
    /// The snooping cache overwrites its copy with the word carried by
    /// the transaction (write-update protocols reacting to
    /// [`BusOp::Update`]).
    pub receives_update: bool,
}

impl SnoopOutcome {
    /// The snooper keeps its state and does nothing.
    pub const fn ignore(state: StateId) -> SnoopOutcome {
        SnoopOutcome {
            next: state,
            supplies_data: false,
            flushes_to_memory: false,
            receives_update: false,
        }
    }

    /// The snooper moves to `next` without touching data.
    pub const fn to(next: StateId) -> SnoopOutcome {
        SnoopOutcome {
            next,
            supplies_data: false,
            flushes_to_memory: false,
            receives_update: false,
        }
    }

    /// The snooper moves to `next` and supplies the block to the
    /// requester.
    pub const fn supply(next: StateId) -> SnoopOutcome {
        SnoopOutcome {
            next,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: false,
        }
    }

    /// The snooper moves to `next`, supplies the block, and
    /// simultaneously updates main memory (Illinois Dirty on `BusRd`).
    pub const fn supply_and_flush(next: StateId) -> SnoopOutcome {
        SnoopOutcome {
            next,
            supplies_data: true,
            flushes_to_memory: true,
            receives_update: false,
        }
    }

    /// The snooper moves to `next` and writes its copy back to memory
    /// without supplying the requester (Synapse abort-and-retry).
    pub const fn flush(next: StateId) -> SnoopOutcome {
        SnoopOutcome {
            next,
            supplies_data: false,
            flushes_to_memory: true,
            receives_update: false,
        }
    }

    /// The snooper moves to `next` and absorbs the broadcast update.
    pub const fn updated(next: StateId) -> SnoopOutcome {
        SnoopOutcome {
            next,
            supplies_data: false,
            flushes_to_memory: false,
            receives_update: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, b) in BusOp::ALL.iter().enumerate() {
            assert_eq!(b.index(), i);
        }
        assert_eq!(BusOp::ALL.len(), BusOp::COUNT);
    }

    #[test]
    fn mnemonics() {
        assert_eq!(BusOp::Read.to_string(), "BusRd");
        assert_eq!(BusOp::ReadX.to_string(), "BusRdX");
        assert_eq!(BusOp::Upgrade.to_string(), "BusUpgr");
        assert_eq!(BusOp::Update.to_string(), "BusUpd");
        assert_eq!(BusOp::WriteBack.to_string(), "BusWB");
    }

    #[test]
    fn snoop_constructors() {
        let s = StateId(2);
        assert_eq!(SnoopOutcome::ignore(s).next, s);
        assert!(SnoopOutcome::supply(s).supplies_data);
        assert!(!SnoopOutcome::supply(s).flushes_to_memory);
        let sf = SnoopOutcome::supply_and_flush(s);
        assert!(sf.supplies_data && sf.flushes_to_memory);
        assert!(SnoopOutcome::flush(s).flushes_to_memory);
        assert!(!SnoopOutcome::flush(s).supplies_data);
        assert!(SnoopOutcome::updated(s).receives_update);
    }
}
