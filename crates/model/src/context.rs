//! Global context — the characteristic function `F` of the FSM model.
//!
//! Definition 1 of the paper equips the protocol FSM with a
//! *characteristic function* `F` defined over the global state, so that a
//! cache's next state may depend not only on its own state and the
//! processor operation but also on the states of all other caches. The
//! paper restricts `F` to two cases (§2.1):
//!
//! * **null** — transitions depend only on the local state and event
//!   (Write-Once, Synapse, Berkeley, MSI);
//! * the **sharing-detection function** — `fᵢ(C₁..Cₙ) = true` iff some
//!   cache other than `Cᵢ` holds a valid copy (Illinois, Firefly,
//!   Dragon: a read miss fills `Valid-Exclusive` when the bus's "shared"
//!   line is not asserted).
//!
//! [`GlobalCtx`] is the *evaluation* of those predicates from the
//! perspective of the originating cache. In addition to the paper's
//! sharing bit we expose whether an *owned* (dirty) copy exists in
//! another cache: this never influences the originator's **state**
//! transition in the protocols considered (it would otherwise be part of
//! `F`), but it lets the spec builder express data-source distinctions
//! and lets validation confirm `F`-independence for null-`F` protocols.

use core::fmt;

/// The global context observed by an originating cache, i.e. the value
/// of the characteristic predicates over all *other* caches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GlobalCtx {
    /// Some other cache holds a valid copy of the block — the paper's
    /// sharing-detection function `fᵢ` (the hardware "shared" bus line).
    pub others_hold_copy: bool,
    /// Some other cache holds an *owned* copy (a copy whose state has
    /// [`crate::StateAttrs::owned`] set). Implies `others_hold_copy`.
    pub owner_exists: bool,
}

impl GlobalCtx {
    /// No other cache holds the block.
    pub const ALONE: GlobalCtx = GlobalCtx {
        others_hold_copy: false,
        owner_exists: false,
    };

    /// Other caches hold clean (non-owned) copies.
    pub const SHARED_CLEAN: GlobalCtx = GlobalCtx {
        others_hold_copy: true,
        owner_exists: false,
    };

    /// Another cache owns the block.
    pub const OWNED_ELSEWHERE: GlobalCtx = GlobalCtx {
        others_hold_copy: true,
        owner_exists: true,
    };

    /// All *consistent* contexts (`owner_exists ⇒ others_hold_copy`),
    /// in dense-index order.
    pub const ALL: [GlobalCtx; 3] = [
        GlobalCtx::ALONE,
        GlobalCtx::SHARED_CLEAN,
        GlobalCtx::OWNED_ELSEWHERE,
    ];

    /// Number of consistent contexts.
    pub const COUNT: usize = 3;

    /// Dense index of this context in [`GlobalCtx::ALL`].
    ///
    /// # Panics
    /// Panics on the inconsistent combination
    /// `(others_hold_copy = false, owner_exists = true)`.
    #[inline]
    pub fn index(self) -> usize {
        match (self.others_hold_copy, self.owner_exists) {
            (false, false) => 0,
            (true, false) => 1,
            (true, true) => 2,
            (false, true) => panic!("inconsistent GlobalCtx: owner without copy"),
        }
    }

    /// True iff this combination satisfies `owner_exists ⇒
    /// others_hold_copy`.
    #[inline]
    pub fn is_consistent(self) -> bool {
        !self.owner_exists || self.others_hold_copy
    }
}

impl fmt::Display for GlobalCtx {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.others_hold_copy, self.owner_exists) {
            (false, _) => f.write_str("alone"),
            (true, false) => f.write_str("shared-clean"),
            (true, true) => f.write_str("owned-elsewhere"),
        }
    }
}

/// Which characteristic function the protocol uses (§2.1).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Characteristic {
    /// `F` is null: the originator's next state depends only on its own
    /// state and the processor event.
    #[default]
    Null,
    /// `F` is the sharing-detection function: the originator's next
    /// state may additionally depend on whether another valid copy
    /// exists.
    SharingDetection,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, c) in GlobalCtx::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert!(c.is_consistent());
        }
    }

    #[test]
    fn inconsistent_ctx_detected() {
        let bad = GlobalCtx {
            others_hold_copy: false,
            owner_exists: true,
        };
        assert!(!bad.is_consistent());
    }

    #[test]
    #[should_panic(expected = "inconsistent GlobalCtx")]
    fn inconsistent_ctx_panics_on_index() {
        let bad = GlobalCtx {
            others_hold_copy: false,
            owner_exists: true,
        };
        let _ = bad.index();
    }

    #[test]
    fn display_names() {
        assert_eq!(GlobalCtx::ALONE.to_string(), "alone");
        assert_eq!(GlobalCtx::SHARED_CLEAN.to_string(), "shared-clean");
        assert_eq!(GlobalCtx::OWNED_ELSEWHERE.to_string(), "owned-elsewhere");
    }
}
