//! The textbook three-state write-invalidate protocol (MSI).
//!
//! States: `Invalid`, `Shared` (clean, possibly replicated), `Modified`
//! (dirty, exclusive). Memory supplies clean blocks; a `Modified`
//! snooper supplies the block and flushes it to memory on a remote read
//! and hands the (about-to-be-overwritten) block to the requester on a
//! remote write. The characteristic function is null: an MSI cache's
//! next state never depends on the rest of the system.

use crate::{BusOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs};

/// Builds the MSI protocol.
pub fn msi() -> ProtocolSpec {
    let mut b = SpecBuilder::new("MSI");
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let sh = b.state("Shared", "S", StateAttrs::SHARED_CLEAN);
    let m = b.state("Modified", "M", StateAttrs::DIRTY);

    // Invalid.
    b.on(inv, ProcEvent::Read, Outcome::read_miss(sh));
    b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(m));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared.
    b.on(sh, ProcEvent::Read, Outcome::read_hit(sh));
    b.on(sh, ProcEvent::Write, Outcome::write_hit_invalidate(m));
    b.on(sh, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Modified.
    b.on(m, ProcEvent::Read, Outcome::read_hit(m));
    b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
    b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoop reactions.
    b.snoop(sh, BusOp::Read, SnoopOutcome::to(sh)); // memory supplies
    b.snoop(sh, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(sh, BusOp::Upgrade, SnoopOutcome::to(inv));
    b.snoop(m, BusOp::Read, SnoopOutcome::supply_and_flush(sh));
    b.snoop(
        m,
        BusOp::ReadX,
        SnoopOutcome {
            next: inv,
            supplies_data: true,
            flushes_to_memory: true,
            receives_update: false,
        },
    );

    b.build().expect("MSI specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Characteristic, GlobalCtx};

    #[test]
    fn builds_and_has_three_states() {
        let p = msi();
        assert_eq!(p.num_states(), 3);
        assert_eq!(p.characteristic(), Characteristic::Null);
        assert!(!p.uses_sharing_detection());
    }

    #[test]
    fn read_miss_is_ctx_independent() {
        let p = msi();
        let inv = p.invalid();
        let sh = p.state_by_name("Shared").unwrap();
        for c in GlobalCtx::ALL {
            assert_eq!(p.outcome(inv, ProcEvent::Read, c).next, sh);
        }
    }

    #[test]
    fn modified_snooper_flushes_on_remote_read() {
        let p = msi();
        let m = p.state_by_name("Modified").unwrap();
        let s = p.snoop(m, BusOp::Read);
        assert!(s.flushes_to_memory && s.supplies_data);
        assert_eq!(s.next, p.state_by_name("Shared").unwrap());
    }

    #[test]
    fn shared_write_emits_upgrade() {
        let p = msi();
        let sh = p.state_by_name("Shared").unwrap();
        let o = p.outcome(sh, ProcEvent::Write, GlobalCtx::SHARED_CLEAN);
        assert_eq!(o.bus, Some(BusOp::Upgrade));
        assert_eq!(o.next, p.state_by_name("Modified").unwrap());
    }

    #[test]
    fn only_modified_is_owned() {
        let p = msi();
        let owned: Vec<_> = p.owned_states().collect();
        assert_eq!(owned, vec![p.state_by_name("Modified").unwrap()]);
    }
}
