//! Split-transaction MSI — the textbook three-state protocol on a
//! **non-atomic bus**.
//!
//! The atomic [`super::msi`] fires a processor event and its bus
//! transaction in one indivisible step. On a split-transaction bus the
//! cache must first *win* the bus: between issuing a request and being
//! granted the bus, arbitrary transactions from other processors slide
//! in. Three transient states make that window observable:
//!
//! * `IS_D` — read miss in flight: no copy, waiting for `BusRd` data.
//! * `IM_D` — write miss in flight: no copy, waiting for `BusRdX` data.
//! * `SM_W` — upgrade in flight: a clean `Shared` copy is held, waiting
//!   for the `BusUpgr` grant.
//!
//! The interesting race is against `SM_W`: if a remote `BusRdX` or
//! `BusUpgr` wins the bus first, the local copy is invalidated while
//! the upgrade is still queued — the pending upgrade must *convert*
//! into a full read-exclusive (`SM_W → IM_D`), otherwise the completed
//! upgrade would resurrect a stale copy as `Modified`. The two seeded
//! mutants below break exactly that conversion; the resulting
//! double-`Modified` states are reachable **only** through a
//! request/request interleaving and are invisible to the atomic model.

use crate::{
    BusOp, DataOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs,
};

/// Builds the split-transaction MSI protocol.
pub fn split_msi() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Split-MSI");
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let sh = b.state("Shared", "S", StateAttrs::SHARED_CLEAN);
    let m = b.state("Modified", "M", StateAttrs::DIRTY);
    // Misses in flight hold no copy; the upgrade in flight keeps its
    // clean Shared copy.
    let is_d = b.transient("Read-Pending", "IS_D", StateAttrs::INVALID, BusOp::Read);
    let im_d = b.transient("Write-Pending", "IM_D", StateAttrs::INVALID, BusOp::ReadX);
    let sm_w = b.transient(
        "Upgrade-Pending",
        "SM_W",
        StateAttrs::SHARED_CLEAN,
        BusOp::Upgrade,
    );

    // Invalid: misses become requests; the data moves at completion.
    b.on(inv, ProcEvent::Read, Outcome::silent(is_d));
    b.on(inv, ProcEvent::Write, Outcome::silent(im_d));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared.
    b.on(sh, ProcEvent::Read, Outcome::read_hit(sh));
    b.on(sh, ProcEvent::Write, Outcome::silent(sm_w));
    b.on(sh, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Modified: hits stay atomic (no bus involved).
    b.on(m, ProcEvent::Read, Outcome::read_hit(m));
    b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
    b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Completions: the pending transaction finally wins the bus.
    b.on_complete(is_d, Outcome::read_miss(sh));
    b.on_complete(im_d, Outcome::write_miss_invalidate(m));
    b.on_complete(
        sm_w,
        Outcome {
            next: m,
            bus: Some(BusOp::Upgrade),
            data: DataOp::Write {
                fill: false,
                through: false,
                broadcast: false,
            },
        },
    );

    // Snoop reactions of the stable states, as in atomic MSI.
    b.snoop(sh, BusOp::Read, SnoopOutcome::to(sh)); // memory supplies
    b.snoop(sh, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(sh, BusOp::Upgrade, SnoopOutcome::to(inv));
    b.snoop(m, BusOp::Read, SnoopOutcome::supply_and_flush(sh));
    b.snoop(
        m,
        BusOp::ReadX,
        SnoopOutcome {
            next: inv,
            supplies_data: true,
            flushes_to_memory: true,
            receives_update: false,
        },
    );

    // The race: a remote invalidation overtakes the queued upgrade.
    // The copy is gone, so the pending BusUpgr converts into a full
    // BusRdX — SM_W retargets to IM_D.
    b.snoop(sm_w, BusOp::ReadX, SnoopOutcome::to(im_d));
    b.snoop(sm_w, BusOp::Upgrade, SnoopOutcome::to(im_d));

    b.build().expect("Split-MSI specification must validate")
}

/// Seeded bug: `SM_W` ignores a remote `BusUpgr`, keeping its stale
/// pending upgrade. Two racing upgraders both reach `Modified` — a
/// violation only a request/request interleaving can expose.
pub fn split_msi_upgrade_race_lost() -> ProtocolSpec {
    let p = split_msi();
    let sm_w = p.state_by_name("SM_W").unwrap();
    p.override_snoop(sm_w, BusOp::Upgrade, SnoopOutcome::ignore(sm_w))
        .renamed("Split-MSI/upgrade-race-lost")
}

/// Seeded bug: `SM_W` ignores a remote `BusRdX`, so the queued upgrade
/// later completes against a copy that was invalidated mid-flight and
/// coexists with the remote writer's `Modified` block.
pub fn split_msi_ignores_readx() -> ProtocolSpec {
    let p = split_msi();
    let sm_w = p.state_by_name("SM_W").unwrap();
    p.override_snoop(sm_w, BusOp::ReadX, SnoopOutcome::ignore(sm_w))
        .renamed("Split-MSI/ignores-readx")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalCtx;

    #[test]
    fn builds_with_three_transients() {
        let p = split_msi();
        assert_eq!(p.num_states(), 6);
        assert!(p.has_transients());
        let tr: Vec<_> = p.transient_states().collect();
        assert_eq!(tr.len(), 3);
    }

    #[test]
    fn requests_are_silent_and_stall() {
        let p = split_msi();
        let inv = p.invalid();
        let is_d = p.state_by_name("IS_D").unwrap();
        let o = p.outcome(inv, ProcEvent::Read, GlobalCtx::ALONE);
        assert_eq!(o.next, is_d);
        assert_eq!(o.bus, None);
        assert_eq!(o.data, DataOp::None);
        // While waiting, processor events stall in place.
        for e in ProcEvent::ALL {
            for c in GlobalCtx::ALL {
                assert_eq!(p.outcome(is_d, e, c), Outcome::silent(is_d));
            }
        }
    }

    #[test]
    fn completion_fires_the_pending_transaction() {
        let p = split_msi();
        let is_d = p.state_by_name("IS_D").unwrap();
        let sh = p.state_by_name("S").unwrap();
        let o = p.outcome(is_d, ProcEvent::Complete, GlobalCtx::ALONE);
        assert_eq!(o.next, sh);
        assert_eq!(o.bus, Some(BusOp::Read));
        assert_eq!(o.data, DataOp::Read { fill: true });
        assert_eq!(p.transient_info(is_d).unwrap().pending, BusOp::Read);
    }

    #[test]
    fn remote_invalidation_converts_the_pending_upgrade() {
        let p = split_msi();
        let sm_w = p.state_by_name("SM_W").unwrap();
        let im_d = p.state_by_name("IM_D").unwrap();
        assert_eq!(p.snoop(sm_w, BusOp::ReadX).next, im_d);
        assert_eq!(p.snoop(sm_w, BusOp::Upgrade).next, im_d);
    }

    #[test]
    fn mutants_differ_only_in_the_race_window() {
        for mutant in [split_msi_upgrade_race_lost(), split_msi_ignores_readx()] {
            let sm_w = mutant.state_by_name("SM_W").unwrap();
            let bus = if mutant.name().contains("readx") {
                BusOp::ReadX
            } else {
                BusOp::Upgrade
            };
            assert_eq!(mutant.snoop(sm_w, bus).next, sm_w, "{}", mutant.name());
        }
    }
}
