//! The minimal write-through invalidate protocol.
//!
//! Two states: `Invalid` and `Valid`. Every store is written through
//! to memory and broadcast as an invalidation, so memory is always
//! fresh and replacement is always silent. This is the simplest
//! coherent protocol and the degenerate baseline of every protocol
//! comparison (all the write-back designs exist to beat it on bus
//! traffic). Null characteristic function.

use crate::{
    BusOp, DataOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs,
};

/// Builds the write-through invalidate protocol.
pub fn write_through() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Write-Through");
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let v = b.state("Valid", "V", StateAttrs::SHARED_CLEAN);

    b.on(inv, ProcEvent::Read, Outcome::read_miss(v));
    // Write miss: allocate, write through, invalidate remote copies.
    b.on(
        inv,
        ProcEvent::Write,
        Outcome {
            next: v,
            bus: Some(BusOp::ReadX),
            data: DataOp::Write {
                fill: true,
                through: true,
                broadcast: false,
            },
        },
    );
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    b.on(v, ProcEvent::Read, Outcome::read_hit(v));
    // Write hit: write through, invalidate remote copies.
    b.on(
        v,
        ProcEvent::Write,
        Outcome::write_hit_through_invalidate(v),
    );
    b.on(v, ProcEvent::Replace, Outcome::evict_clean(inv)); // always clean

    b.snoop(v, BusOp::Read, SnoopOutcome::to(v)); // memory supplies
    b.snoop(v, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(v, BusOp::Upgrade, SnoopOutcome::to(inv));

    b.build()
        .expect("Write-Through specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Characteristic, GlobalCtx};

    #[test]
    fn two_states_null_characteristic() {
        let p = write_through();
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.characteristic(), Characteristic::Null);
        assert_eq!(p.owned_states().count(), 0, "nothing is ever dirty");
    }

    #[test]
    fn every_write_reaches_memory() {
        let p = write_through();
        let v = p.state_by_name("Valid").unwrap();
        for (st, ev) in [(p.invalid(), ProcEvent::Write), (v, ProcEvent::Write)] {
            let o = p.outcome(st, ev, GlobalCtx::ALONE);
            match o.data {
                DataOp::Write { through, .. } => assert!(through),
                other => panic!("expected write, got {other:?}"),
            }
        }
    }

    #[test]
    fn replacement_is_always_silent() {
        let p = write_through();
        let v = p.state_by_name("Valid").unwrap();
        let o = p.outcome(v, ProcEvent::Replace, GlobalCtx::ALONE);
        assert_eq!(o.bus, None);
        assert_eq!(o.data, DataOp::Evict { writeback: false });
    }

    #[test]
    fn remote_writes_invalidate() {
        let p = write_through();
        let v = p.state_by_name("Valid").unwrap();
        assert_eq!(p.snoop(v, BusOp::Upgrade).next, p.invalid());
        assert_eq!(p.snoop(v, BusOp::ReadX).next, p.invalid());
    }
}
