//! Goodman's Write-Once protocol.
//!
//! The first write to a block is written *through* to memory (which
//! doubles as the invalidation broadcast); subsequent writes are local.
//! States: `Invalid`, `Valid` (clean, possibly replicated), `Reserved`
//! (clean, written through exactly once, only cached copy — memory is
//! up to date), `Dirty` (modified, only cached copy). Null
//! characteristic function: no transition depends on the rest of the
//! system.

use crate::{BusOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs};

/// Builds the Write-Once protocol.
pub fn write_once() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Write-Once");
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let v = b.state("Valid", "V", StateAttrs::SHARED_CLEAN);
    // Reserved is exclusive but clean (memory was just written through).
    let r = b.state("Reserved", "R", StateAttrs::VALID_EXCLUSIVE);
    let d = b.state("Dirty", "D", StateAttrs::DIRTY);

    // Invalid.
    b.on(inv, ProcEvent::Read, Outcome::read_miss(v));
    b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(d));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Valid: the write-once write — through to memory, invalidating.
    b.on(v, ProcEvent::Read, Outcome::read_hit(v));
    b.on(
        v,
        ProcEvent::Write,
        Outcome::write_hit_through_invalidate(r),
    );
    b.on(v, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Reserved: the second write is local.
    b.on(r, ProcEvent::Read, Outcome::read_hit(r));
    b.on(r, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(r, ProcEvent::Replace, Outcome::evict_clean(inv)); // memory is current

    // Dirty.
    b.on(d, ProcEvent::Read, Outcome::read_hit(d));
    b.on(d, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(d, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoop reactions. Memory supplies clean blocks.
    b.snoop(v, BusOp::Read, SnoopOutcome::to(v));
    b.snoop(v, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(v, BusOp::Upgrade, SnoopOutcome::to(inv));
    b.snoop(r, BusOp::Read, SnoopOutcome::to(v)); // degrade to shared-clean
    b.snoop(r, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(r, BusOp::Upgrade, SnoopOutcome::to(inv));
    // A Dirty snooper inhibits memory, supplies the block and writes it
    // back in the same transaction.
    b.snoop(d, BusOp::Read, SnoopOutcome::supply_and_flush(v));
    b.snoop(d, BusOp::ReadX, SnoopOutcome::supply(inv));

    b.build().expect("Write-Once specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Characteristic, DataOp, GlobalCtx};

    #[test]
    fn builds_with_four_states_null_characteristic() {
        let p = write_once();
        assert_eq!(p.num_states(), 4);
        assert_eq!(p.characteristic(), Characteristic::Null);
    }

    #[test]
    fn first_write_goes_through_to_memory() {
        let p = write_once();
        let v = p.state_by_name("Valid").unwrap();
        let o = p.outcome(v, ProcEvent::Write, GlobalCtx::ALONE);
        assert_eq!(o.next, p.state_by_name("Reserved").unwrap());
        assert_eq!(o.bus, Some(BusOp::Upgrade));
        assert_eq!(
            o.data,
            DataOp::Write {
                fill: false,
                through: true,
                broadcast: false
            }
        );
    }

    #[test]
    fn second_write_is_local() {
        let p = write_once();
        let r = p.state_by_name("Reserved").unwrap();
        let o = p.outcome(r, ProcEvent::Write, GlobalCtx::ALONE);
        assert_eq!(o.bus, None);
        assert_eq!(o.next, p.state_by_name("Dirty").unwrap());
    }

    #[test]
    fn reserved_is_clean_exclusive() {
        let p = write_once();
        let r = p.state_by_name("Reserved").unwrap();
        assert!(p.attrs(r).exclusive);
        assert!(!p.attrs(r).owned, "Reserved is memory-consistent");
        // and therefore needs no write-back on replacement:
        let o = p.outcome(r, ProcEvent::Replace, GlobalCtx::ALONE);
        assert_eq!(o.data, DataOp::Evict { writeback: false });
    }

    #[test]
    fn reserved_degrades_to_valid_on_remote_read() {
        let p = write_once();
        let r = p.state_by_name("Reserved").unwrap();
        assert_eq!(
            p.snoop(r, BusOp::Read).next,
            p.state_by_name("Valid").unwrap()
        );
    }

    #[test]
    fn dirty_supplies_and_flushes_on_remote_read() {
        let p = write_once();
        let d = p.state_by_name("D").unwrap();
        let s = p.snoop(d, BusOp::Read);
        assert!(s.supplies_data && s.flushes_to_memory);
        assert_eq!(s.next, p.state_by_name("Valid").unwrap());
    }
}
