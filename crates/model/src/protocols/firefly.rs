//! The DEC Firefly protocol — write-update with write-through for
//! shared blocks.
//!
//! The paper (§2.1) cites Firefly, with Dragon, as the other family of
//! protocols requiring the sharing-detection characteristic function:
//! the bus's *SharedLine* tells the writer/filler whether other copies
//! exist. Blocks are never invalidated; writes to shared blocks are
//! broadcast and written through to memory, so every `Shared` copy and
//! memory stay identical. States: `Invalid` (absent), `Valid-Exclusive`
//! (clean, only cached copy), `Shared` (clean, replicated), `Dirty`
//! (modified, only cached copy).

use crate::{
    BusOp, Characteristic, DataOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder,
    StateAttrs,
};

/// Builds the Firefly protocol.
pub fn firefly() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Firefly").characteristic(Characteristic::SharingDetection);
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let ve = b.state("Valid-Exclusive", "V-Ex", StateAttrs::VALID_EXCLUSIVE);
    let sh = b.state("Shared", "Shared", StateAttrs::SHARED_CLEAN);
    let d = b.state("Dirty", "Dirty", StateAttrs::DIRTY);

    // Invalid: read miss fills according to the SharedLine; a Dirty
    // snooper supplies and simultaneously updates memory.
    b.on_sharing(
        inv,
        ProcEvent::Read,
        Outcome::read_miss(ve),
        Outcome::read_miss(sh),
    );
    // Write miss. Alone: load and write locally (Dirty). Shared: the
    // fill and the update broadcast form one atomic BusUpd transaction —
    // every copy absorbs the new value and memory is written through;
    // nothing is invalidated.
    b.on_sharing(
        inv,
        ProcEvent::Write,
        Outcome::write_miss_invalidate(d),
        Outcome {
            next: sh,
            bus: Some(BusOp::Update),
            data: DataOp::Write {
                fill: true,
                through: true,
                broadcast: true,
            },
        },
    );
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Valid-Exclusive.
    b.on(ve, ProcEvent::Read, Outcome::read_hit(ve));
    b.on(ve, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(ve, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared: writes are broadcast and written through. If the
    // SharedLine shows no other copy remains, the writer regains
    // exclusivity (memory was just updated, so the copy is clean).
    b.on_sharing(
        sh,
        ProcEvent::Write,
        Outcome::write_hit_update(ve, true),
        Outcome::write_hit_update(sh, true),
    );
    b.on(sh, ProcEvent::Read, Outcome::read_hit(sh));
    b.on(sh, ProcEvent::Replace, Outcome::evict_clean(inv)); // write-through keeps Shared clean

    // Dirty.
    b.on(d, ProcEvent::Read, Outcome::read_hit(d));
    b.on(d, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(d, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoop reactions. No state ever reacts to BusRdX/BusUpgr: those
    // transactions are only emitted when no other copy exists.
    b.snoop(ve, BusOp::Read, SnoopOutcome::supply(sh));
    b.snoop(sh, BusOp::Read, SnoopOutcome::supply(sh));
    b.snoop(d, BusOp::Read, SnoopOutcome::supply_and_flush(sh));
    // BusUpd: holders absorb the new value (and can serve the fill half
    // of a write miss). Exclusive holders — clean or dirty — degrade to
    // Shared; memory is freshened by the write-through.
    b.snoop(
        ve,
        BusOp::Update,
        SnoopOutcome {
            next: sh,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: true,
        },
    );
    b.snoop(
        sh,
        BusOp::Update,
        SnoopOutcome {
            next: sh,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: true,
        },
    );
    b.snoop(
        d,
        BusOp::Update,
        SnoopOutcome {
            next: sh,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: true,
        },
    );

    b.build().expect("Firefly specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalCtx;

    #[test]
    fn uses_sharing_detection() {
        let p = firefly();
        assert!(p.uses_sharing_detection());
        assert_eq!(p.num_states(), 4);
    }

    #[test]
    fn shared_write_is_written_through() {
        let p = firefly();
        let sh = p.state_by_name("Shared").unwrap();
        let o = p.outcome(sh, ProcEvent::Write, GlobalCtx::SHARED_CLEAN);
        assert_eq!(o.bus, Some(BusOp::Update));
        match o.data {
            DataOp::Write {
                through, broadcast, ..
            } => {
                assert!(through, "shared writes write through to memory");
                assert!(broadcast, "shared writes update remote copies");
            }
            other => panic!("expected a write, got {other:?}"),
        }
    }

    #[test]
    fn lone_shared_writer_regains_exclusivity() {
        let p = firefly();
        let sh = p.state_by_name("Shared").unwrap();
        let alone = p.outcome(sh, ProcEvent::Write, GlobalCtx::ALONE);
        assert_eq!(alone.next, p.state_by_name("V-Ex").unwrap());
        let shared = p.outcome(sh, ProcEvent::Write, GlobalCtx::SHARED_CLEAN);
        assert_eq!(shared.next, sh);
    }

    #[test]
    fn nothing_is_ever_invalidated() {
        let p = firefly();
        // No snoop reaction of a valid state leads to Invalid.
        for s in p.valid_states() {
            for bus in BusOp::ALL {
                assert_ne!(
                    p.snoop(s, bus).next,
                    p.invalid(),
                    "Firefly must never invalidate ({:?} on {bus})",
                    p.state(s).name
                );
            }
        }
    }

    #[test]
    fn snoopers_absorb_updates() {
        let p = firefly();
        let sh = p.state_by_name("Shared").unwrap();
        let d = p.state_by_name("Dirty").unwrap();
        assert!(p.snoop(sh, BusOp::Update).receives_update);
        assert!(p.snoop(d, BusOp::Update).receives_update);
        assert_eq!(p.snoop(d, BusOp::Update).next, sh);
    }

    #[test]
    fn shared_replacement_is_silent() {
        let p = firefly();
        let sh = p.state_by_name("Shared").unwrap();
        let o = p.outcome(sh, ProcEvent::Replace, GlobalCtx::SHARED_CLEAN);
        assert_eq!(o.bus, None, "write-through keeps Shared clean");
    }
}
