//! The five-state MOESI protocol (Sweazey & Smith's framework).
//!
//! Adds an `Owned` state to MESI: a modified block can be shared
//! without first being written back — the owner supplies it on misses
//! and retains write-back responsibility, while readers hold it
//! `Shared`. The `Exclusive` fill requires the sharing-detection
//! function, as in Illinois.

use crate::{
    BusOp, Characteristic, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs,
};

/// Builds the MOESI protocol.
pub fn moesi() -> ProtocolSpec {
    let mut b = SpecBuilder::new("MOESI").characteristic(Characteristic::SharingDetection);
    let inv = b.state("Invalid", "I", StateAttrs::INVALID);
    let e = b.state("Exclusive", "E", StateAttrs::VALID_EXCLUSIVE);
    let s = b.state("Shared", "S", StateAttrs::SHARED_CLEAN);
    let o = b.state("Owned", "O", StateAttrs::OWNED_SHARED);
    let m = b.state("Modified", "M", StateAttrs::DIRTY);

    // Invalid.
    b.on_sharing(
        inv,
        ProcEvent::Read,
        Outcome::read_miss(e),
        Outcome::read_miss(s),
    );
    b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(m));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Exclusive.
    b.on(e, ProcEvent::Read, Outcome::read_hit(e));
    b.on(e, ProcEvent::Write, Outcome::write_hit_silent(m));
    b.on(e, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared.
    b.on(s, ProcEvent::Read, Outcome::read_hit(s));
    b.on(s, ProcEvent::Write, Outcome::write_hit_invalidate(m));
    b.on(s, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Owned: supplies on misses, writes back on replacement; a write
    // hit concentrates ownership by invalidating the other copies.
    b.on(o, ProcEvent::Read, Outcome::read_hit(o));
    b.on(o, ProcEvent::Write, Outcome::write_hit_invalidate(m));
    b.on(o, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Modified.
    b.on(m, ProcEvent::Read, Outcome::read_hit(m));
    b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
    b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoop reactions.
    b.snoop(e, BusOp::Read, SnoopOutcome::supply(s));
    b.snoop(e, BusOp::ReadX, SnoopOutcome::supply(inv));
    b.snoop(s, BusOp::Read, SnoopOutcome::supply(s));
    b.snoop(s, BusOp::ReadX, SnoopOutcome::supply(inv));
    b.snoop(s, BusOp::Upgrade, SnoopOutcome::to(inv));
    b.snoop(o, BusOp::Read, SnoopOutcome::supply(o));
    b.snoop(o, BusOp::ReadX, SnoopOutcome::supply(inv));
    b.snoop(o, BusOp::Upgrade, SnoopOutcome::to(inv));
    // The MOESI hallmark: M degrades to O on a remote read, with no
    // write-back — memory stays stale, the owner keeps the burden.
    b.snoop(m, BusOp::Read, SnoopOutcome::supply(o));
    b.snoop(m, BusOp::ReadX, SnoopOutcome::supply(inv));

    b.build().expect("MOESI specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalCtx;

    #[test]
    fn five_states_with_sharing_detection() {
        let p = moesi();
        assert_eq!(p.num_states(), 5);
        assert!(p.uses_sharing_detection());
    }

    #[test]
    fn modified_degrades_to_owned_without_flush() {
        let p = moesi();
        let m = p.state_by_name("Modified").unwrap();
        let snoop = p.snoop(m, BusOp::Read);
        assert_eq!(snoop.next, p.state_by_name("Owned").unwrap());
        assert!(snoop.supplies_data);
        assert!(!snoop.flushes_to_memory, "MOESI: no flush on remote read");
    }

    #[test]
    fn owned_and_modified_write_back() {
        let p = moesi();
        for st in ["Owned", "Modified"] {
            let out = p.outcome(
                p.state_by_name(st).unwrap(),
                ProcEvent::Replace,
                GlobalCtx::ALONE,
            );
            assert_eq!(out.bus, Some(BusOp::WriteBack), "{st}");
        }
    }

    #[test]
    fn exclusive_fill_needs_empty_system() {
        let p = moesi();
        let e = p.state_by_name("Exclusive").unwrap();
        let s = p.state_by_name("Shared").unwrap();
        assert_eq!(
            p.outcome(p.invalid(), ProcEvent::Read, GlobalCtx::ALONE)
                .next,
            e
        );
        assert_eq!(
            p.outcome(p.invalid(), ProcEvent::Read, GlobalCtx::OWNED_ELSEWHERE)
                .next,
            s
        );
    }

    #[test]
    fn owned_is_shared_modified_is_exclusive() {
        let p = moesi();
        let o = p.state_by_name("Owned").unwrap();
        let m = p.state_by_name("Modified").unwrap();
        assert!(p.attrs(o).owned && !p.attrs(o).exclusive);
        assert!(p.attrs(m).owned && p.attrs(m).exclusive);
    }
}
