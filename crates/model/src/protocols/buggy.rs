//! Deliberately incorrect protocol mutants.
//!
//! Each mutant introduces one plausible implementation bug into a
//! correct protocol via the spec mutation API. They are the positive
//! controls of the verification experiments (E6 in DESIGN.md): a
//! verifier that accepts any of these is broken. Each docstring states
//! the seeded bug and the class of erroneous state it should produce
//! (structural contradiction, data inconsistency, or both).

use super::{berkeley, dragon, firefly, illinois, synapse, write_once};
use crate::{BusOp, DataOp, GlobalCtx, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome};

/// Illinois, except `Shared` snoopers ignore `BusUpgr`: a write hit on a
/// shared block no longer invalidates the other copies.
///
/// Expected failure: the writer reaches `Dirty` while stale `Shared`
/// copies survive — both a structural contradiction (`Dirty` is
/// exclusive) and a data inconsistency (the surviving copies are
/// obsolete yet readable).
pub fn illinois_missing_invalidation() -> ProtocolSpec {
    let p = illinois();
    let sh = p.state_by_name("Shared").expect("Illinois has Shared");
    p.override_snoop(sh, BusOp::Upgrade, SnoopOutcome::ignore(sh))
        .renamed("Illinois/missing-invalidation")
}

/// Illinois, except a `Dirty` replacement silently drops the block
/// instead of writing it back.
///
/// Expected failure: no structural contradiction — the bug is purely a
/// data inconsistency. Memory is left obsolete with no cached copy, so
/// a later read miss fills a readable obsolete copy from memory.
pub fn illinois_missing_writeback() -> ProtocolSpec {
    let p = illinois();
    let d = p.state_by_name("Dirty").expect("Illinois has Dirty");
    let inv = p.invalid();
    p.override_outcome(d, ProcEvent::Replace, None, Outcome::evict_clean(inv))
        .renamed("Illinois/missing-writeback")
}

/// Illinois, except a read miss always fills `Valid-Exclusive` — the
/// sharing-detection function is wired to constant *false* (a classic
/// SharedLine hardware fault).
///
/// Expected failure: structural — `Valid-Exclusive` coexists with other
/// copies.
pub fn illinois_wrong_exclusive_fill() -> ProtocolSpec {
    let p = illinois();
    let inv = p.invalid();
    let ve = p.state_by_name("V-Ex").expect("Illinois has V-Ex");
    p.override_outcome(
        inv,
        ProcEvent::Read,
        Some(GlobalCtx::SHARED_CLEAN),
        Outcome::read_miss(ve),
    )
    .override_outcome(
        inv,
        ProcEvent::Read,
        Some(GlobalCtx::OWNED_ELSEWHERE),
        Outcome::read_miss(ve),
    )
    .renamed("Illinois/wrong-exclusive-fill")
}

/// Illinois, except the `Dirty` snooper supplying a remote read miss
/// forgets the simultaneous memory update ("both caches end up Shared"
/// but memory stays stale).
///
/// Expected failure: subtle, data-only, and *delayed*: the supplied
/// copies are fresh, but both are now `Shared` (unowned) and can be
/// silently replaced, leaving obsolete memory as the only source for
/// the next fill.
pub fn illinois_dirty_no_flush_on_read() -> ProtocolSpec {
    let p = illinois();
    let d = p.state_by_name("Dirty").expect("Illinois has Dirty");
    let sh = p.state_by_name("Shared").expect("Illinois has Shared");
    p.override_snoop(d, BusOp::Read, SnoopOutcome::supply(sh))
        .renamed("Illinois/dirty-no-flush-on-read")
}

/// Synapse, except the `Dirty` snooper ignores `BusRd` instead of
/// aborting, flushing and invalidating itself.
///
/// Expected failure: the requester fills from stale memory while a
/// `Dirty` copy exists — a structural contradiction (`Dirty` is
/// exclusive) and an immediate data inconsistency.
pub fn synapse_dirty_ignores_busrd() -> ProtocolSpec {
    let p = synapse();
    let d = p.state_by_name("Dirty").expect("Synapse has Dirty");
    p.override_snoop(d, BusOp::Read, SnoopOutcome::ignore(d))
        .renamed("Synapse/dirty-ignores-busrd")
}

/// Berkeley, except a `Shared-Dirty` (owner) replacement drops the
/// block without writing it back.
///
/// Expected failure: data-only. Ownership disappears; the remaining
/// `Valid` copies are still fresh, but once they too are replaced, a
/// fill from the never-updated memory returns stale data.
pub fn berkeley_owner_dropped() -> ProtocolSpec {
    let p = berkeley();
    let sd = p.state_by_name("Shared-Dirty").expect("Berkeley has SD");
    let inv = p.invalid();
    p.override_outcome(sd, ProcEvent::Replace, None, Outcome::evict_clean(inv))
        .renamed("Berkeley/owner-dropped")
}

/// Dragon, except `Shared-Clean` snoopers do not absorb `BusUpd`
/// broadcasts (they keep their copy unchanged).
///
/// Expected failure: data-only and immediate — the stale `Shared-Clean`
/// copy remains readable right after a remote write.
pub fn dragon_missing_update() -> ProtocolSpec {
    let p = dragon();
    let sc = p.state_by_name("Shared-Clean").expect("Dragon has SC");
    p.override_snoop(
        sc,
        BusOp::Update,
        SnoopOutcome {
            next: sc,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: false, // the bug: the broadcast is dropped
        },
    )
    .renamed("Dragon/missing-update")
}

/// Firefly, except the broadcast write to a shared block skips the
/// memory write-through (the update still reaches the other caches).
///
/// Expected failure: data-only and delayed. Every cached copy stays
/// fresh, but `Shared` is a clean state in Firefly — replacements are
/// silent — so once all copies are evicted, memory (never updated)
/// serves a stale fill.
pub fn firefly_missing_writethrough() -> ProtocolSpec {
    let p = firefly();
    let sh = p.state_by_name("Shared").expect("Firefly has Shared");
    let write_no_through = Outcome {
        next: sh,
        bus: Some(BusOp::Update),
        data: DataOp::Write {
            fill: false,
            through: false, // the bug: memory is skipped
            broadcast: true,
        },
    };
    p.override_outcome(
        sh,
        ProcEvent::Write,
        Some(GlobalCtx::SHARED_CLEAN),
        write_no_through,
    )
    .override_outcome(
        sh,
        ProcEvent::Write,
        Some(GlobalCtx::OWNED_ELSEWHERE),
        write_no_through,
    )
    .renamed("Firefly/missing-writethrough")
}

/// Write-Once, except the first write to a `Valid` block transitions
/// to `Reserved` *without* the write-through that justifies Reserved's
/// memory-consistent (clean) status.
///
/// Expected failure: data-only and delayed — Reserved replaces
/// silently, abandoning the only fresh copy.
pub fn write_once_missing_writethrough() -> ProtocolSpec {
    let p = write_once();
    let v = p.state_by_name("Valid").expect("Write-Once has Valid");
    let r = p
        .state_by_name("Reserved")
        .expect("Write-Once has Reserved");
    p.override_outcome(
        v,
        ProcEvent::Write,
        None,
        Outcome {
            next: r,
            bus: Some(BusOp::Upgrade),
            data: DataOp::Write {
                fill: false,
                through: false, // the bug
                broadcast: false,
            },
        },
    )
    .renamed("Write-Once/missing-writethrough")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutants_differ_from_their_parents() {
        let ill = illinois();
        let sh = ill.state_by_name("Shared").unwrap();
        let m = illinois_missing_invalidation();
        assert_ne!(
            ill.snoop(sh, BusOp::Upgrade),
            m.snoop(sh, BusOp::Upgrade),
            "mutation must actually change the snoop table"
        );
        assert_ne!(ill.name(), m.name());
    }

    #[test]
    fn writeback_mutant_drops_the_bus_transaction() {
        let m = illinois_missing_writeback();
        let d = m.state_by_name("Dirty").unwrap();
        let o = m.outcome(d, ProcEvent::Replace, GlobalCtx::ALONE);
        assert_eq!(o.bus, None);
        // The emitted-bus summary must no longer advertise BusWB.
        assert!(!m.emitted_bus_ops().contains(&BusOp::WriteBack));
    }

    #[test]
    fn wrong_fill_mutant_ignores_sharing() {
        let m = illinois_wrong_exclusive_fill();
        let ve = m.state_by_name("V-Ex").unwrap();
        for c in GlobalCtx::ALL {
            assert_eq!(m.outcome(m.invalid(), ProcEvent::Read, c).next, ve);
        }
    }

    #[test]
    fn dragon_mutant_keeps_state_but_drops_update() {
        let m = dragon_missing_update();
        let sc = m.state_by_name("SC").unwrap();
        let s = m.snoop(sc, BusOp::Update);
        assert_eq!(s.next, sc);
        assert!(!s.receives_update);
    }
}
