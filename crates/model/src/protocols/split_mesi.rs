//! Split-transaction MESI — Illinois-style sharing detection on a
//! **non-atomic bus**.
//!
//! The stable states are the MESI quartet (`Invalid`, `Exclusive`,
//! `Shared`, `Modified`); the transients mirror [`super::split_msi`]:
//! `IS_D` (read miss in flight), `IM_D` (write miss in flight) and
//! `SM_W` (upgrade in flight, clean copy held).
//!
//! The split bus makes the sharing-detection characteristic *timing
//! sensitive*: whether a read miss fills `Exclusive` or `Shared` is
//! decided by the copies present when the transaction **completes**,
//! not when the processor requested it. A cache that issues a read
//! miss while alone but is overtaken by another read miss must fill
//! `Shared` — the verifier explores both interleavings because the
//! completion outcome is evaluated against the context at grant time.

use crate::{
    BusOp, Characteristic, DataOp, GlobalCtx, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome,
    SpecBuilder, StateAttrs,
};

/// Builds the split-transaction MESI protocol.
pub fn split_mesi() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Split-MESI").characteristic(Characteristic::SharingDetection);
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let ex = b.state("Exclusive", "E", StateAttrs::VALID_EXCLUSIVE);
    let sh = b.state("Shared", "S", StateAttrs::SHARED_CLEAN);
    let m = b.state("Modified", "M", StateAttrs::DIRTY);
    let is_d = b.transient("Read-Pending", "IS_D", StateAttrs::INVALID, BusOp::Read);
    let im_d = b.transient("Write-Pending", "IM_D", StateAttrs::INVALID, BusOp::ReadX);
    let sm_w = b.transient(
        "Upgrade-Pending",
        "SM_W",
        StateAttrs::SHARED_CLEAN,
        BusOp::Upgrade,
    );

    // Invalid: misses queue for the bus.
    b.on(inv, ProcEvent::Read, Outcome::silent(is_d));
    b.on(inv, ProcEvent::Write, Outcome::silent(im_d));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Exclusive: silent upgrade on write (the point of the E state).
    b.on(ex, ProcEvent::Read, Outcome::read_hit(ex));
    b.on(ex, ProcEvent::Write, Outcome::write_hit_silent(m));
    b.on(ex, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared.
    b.on(sh, ProcEvent::Read, Outcome::read_hit(sh));
    b.on(sh, ProcEvent::Write, Outcome::silent(sm_w));
    b.on(sh, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Modified.
    b.on(m, ProcEvent::Read, Outcome::read_hit(m));
    b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
    b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Completions. The read fill picks E vs S from the sharing
    // function *at grant time*.
    b.on_complete_ctx(is_d, GlobalCtx::ALONE, Outcome::read_miss(ex));
    b.on_complete_ctx(is_d, GlobalCtx::SHARED_CLEAN, Outcome::read_miss(sh));
    b.on_complete_ctx(is_d, GlobalCtx::OWNED_ELSEWHERE, Outcome::read_miss(sh));
    b.on_complete(im_d, Outcome::write_miss_invalidate(m));
    b.on_complete(
        sm_w,
        Outcome {
            next: m,
            bus: Some(BusOp::Upgrade),
            data: DataOp::Write {
                fill: false,
                through: false,
                broadcast: false,
            },
        },
    );

    // Snoop reactions, cache-to-cache as in Illinois.
    b.snoop(ex, BusOp::Read, SnoopOutcome::supply(sh));
    b.snoop(ex, BusOp::ReadX, SnoopOutcome::supply(inv));
    b.snoop(sh, BusOp::Read, SnoopOutcome::supply(sh));
    b.snoop(sh, BusOp::ReadX, SnoopOutcome::supply(inv));
    b.snoop(sh, BusOp::Upgrade, SnoopOutcome::to(inv));
    b.snoop(m, BusOp::Read, SnoopOutcome::supply_and_flush(sh));
    b.snoop(m, BusOp::ReadX, SnoopOutcome::supply(inv));

    // Pending-upgrade conversion when an invalidation wins the race.
    b.snoop(sm_w, BusOp::ReadX, SnoopOutcome::to(im_d));
    b.snoop(sm_w, BusOp::Upgrade, SnoopOutcome::to(im_d));

    b.build().expect("Split-MESI specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_with_transients_and_sharing() {
        let p = split_mesi();
        assert_eq!(p.num_states(), 7);
        assert!(p.has_transients());
        assert!(p.uses_sharing_detection());
    }

    #[test]
    fn read_completion_depends_on_grant_time_context() {
        let p = split_mesi();
        let is_d = p.state_by_name("IS_D").unwrap();
        let ex = p.state_by_name("E").unwrap();
        let sh = p.state_by_name("S").unwrap();
        assert_eq!(
            p.outcome(is_d, ProcEvent::Complete, GlobalCtx::ALONE).next,
            ex
        );
        assert_eq!(
            p.outcome(is_d, ProcEvent::Complete, GlobalCtx::SHARED_CLEAN)
                .next,
            sh
        );
        assert_eq!(
            p.outcome(is_d, ProcEvent::Complete, GlobalCtx::OWNED_ELSEWHERE)
                .next,
            sh
        );
    }

    #[test]
    fn upgrade_conversion_mirrors_split_msi() {
        let p = split_mesi();
        let sm_w = p.state_by_name("SM_W").unwrap();
        let im_d = p.state_by_name("IM_D").unwrap();
        assert_eq!(p.snoop(sm_w, BusOp::ReadX).next, im_d);
        assert_eq!(p.snoop(sm_w, BusOp::Upgrade).next, im_d);
    }
}
