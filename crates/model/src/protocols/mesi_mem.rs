//! Standard MESI with memory-reflective fills ("MESI-Mem").
//!
//! The same four states as Illinois, but clean blocks are always
//! supplied by memory (no cache-to-cache transfer for clean data), as
//! in most commercial MESI implementations; and a `Modified` snooper
//! flushes on *both* remote reads and remote writes, so memory is
//! never left stale across an ownership change. Behaviourally (in the
//! sense of `ccv_core::compare`) the global diagram differs from
//! Illinois only in the memory-freshness annotations of the
//! ownership-transfer edges.

use crate::{
    BusOp, Characteristic, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs,
};

/// Builds the memory-reflective MESI protocol.
pub fn mesi_mem() -> ProtocolSpec {
    let mut b = SpecBuilder::new("MESI-Mem").characteristic(Characteristic::SharingDetection);
    let inv = b.state("Invalid", "I", StateAttrs::INVALID);
    let e = b.state("Exclusive", "E", StateAttrs::VALID_EXCLUSIVE);
    let s = b.state("Shared", "S", StateAttrs::SHARED_CLEAN);
    let m = b.state("Modified", "M", StateAttrs::DIRTY);

    // Invalid.
    b.on_sharing(
        inv,
        ProcEvent::Read,
        Outcome::read_miss(e),
        Outcome::read_miss(s),
    );
    b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(m));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Exclusive.
    b.on(e, ProcEvent::Read, Outcome::read_hit(e));
    b.on(e, ProcEvent::Write, Outcome::write_hit_silent(m));
    b.on(e, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared.
    b.on(s, ProcEvent::Read, Outcome::read_hit(s));
    b.on(s, ProcEvent::Write, Outcome::write_hit_invalidate(m));
    b.on(s, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Modified.
    b.on(m, ProcEvent::Read, Outcome::read_hit(m));
    b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
    b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoops: memory supplies clean blocks (no `supply` on E/S).
    b.snoop(e, BusOp::Read, SnoopOutcome::to(s));
    b.snoop(e, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(s, BusOp::Read, SnoopOutcome::to(s));
    b.snoop(s, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(s, BusOp::Upgrade, SnoopOutcome::to(inv));
    // Modified flushes on both kinds of remote miss.
    b.snoop(m, BusOp::Read, SnoopOutcome::supply_and_flush(s));
    b.snoop(
        m,
        BusOp::ReadX,
        SnoopOutcome {
            next: inv,
            supplies_data: true,
            flushes_to_memory: true,
            receives_update: false,
        },
    );

    b.build().expect("MESI-Mem specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::illinois;

    #[test]
    fn builds_with_sharing_detection() {
        let p = mesi_mem();
        assert_eq!(p.num_states(), 4);
        assert!(p.uses_sharing_detection());
    }

    #[test]
    fn clean_states_do_not_supply() {
        let p = mesi_mem();
        for st in ["Exclusive", "Shared"] {
            let id = p.state_by_name(st).unwrap();
            for bus in [BusOp::Read, BusOp::ReadX] {
                assert!(!p.snoop(id, bus).supplies_data, "{st} on {bus}");
            }
        }
        // ...unlike Illinois, where they do.
        let ill = illinois();
        let ve = ill.state_by_name("V-Ex").unwrap();
        assert!(ill.snoop(ve, BusOp::Read).supplies_data);
    }

    #[test]
    fn modified_flushes_on_remote_write_too() {
        let p = mesi_mem();
        let m = p.state_by_name("Modified").unwrap();
        assert!(p.snoop(m, BusOp::ReadX).flushes_to_memory);
        // Illinois hands the stale-memory burden to the new writer.
        let ill = illinois();
        let d = ill.state_by_name("Dirty").unwrap();
        assert!(!ill.snoop(d, BusOp::ReadX).flushes_to_memory);
    }
}
