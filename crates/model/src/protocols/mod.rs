//! The protocol library.
//!
//! Every snooping protocol evaluated by Archibald & Baer \[1\] — the set
//! the paper's methodology was applied to in the companion tech report
//! \[12\] — plus the textbook MSI and MOESI protocols and a family of
//! deliberately *buggy* mutants used to demonstrate error detection.
//!
//! All constructors return fully validated [`crate::ProtocolSpec`]s; the
//! buggy mutants relax only the validations that would reject the very
//! bug they model (they remain well-formed FSMs — the bug is in the
//! protocol logic, exactly the class of error the verifier exists to
//! catch).
//!
//! \[1\]: J. Archibald and J.-L. Baer, "Cache Coherence Protocols:
//!      Evaluation Using a Multiprocessor Simulation Model", ACM TOCS
//!      4(4), 1986.
//! \[12\]: F. Pong and M. Dubois, "The Verification of Cache Coherence
//!      Protocols", USC Tech. Rep. CENG-92-20, 1992.

mod berkeley;
mod buggy;
mod dragon;
mod firefly;
mod illinois;
mod mesi_mem;
mod moesi;
mod msi;
mod split_mesi;
mod split_msi;
mod synapse;
mod write_once;
mod write_through;

pub use berkeley::berkeley;
pub use buggy::{
    berkeley_owner_dropped, dragon_missing_update, firefly_missing_writethrough,
    illinois_dirty_no_flush_on_read, illinois_missing_invalidation, illinois_missing_writeback,
    illinois_wrong_exclusive_fill, synapse_dirty_ignores_busrd, write_once_missing_writethrough,
};
pub use dragon::dragon;
pub use firefly::firefly;
pub use illinois::illinois;
pub use mesi_mem::mesi_mem;
pub use moesi::moesi;
pub use msi::msi;
pub use split_mesi::split_mesi;
pub use split_msi::{split_msi, split_msi_ignores_readx, split_msi_upgrade_race_lost};
pub use synapse::synapse;
pub use write_once::write_once;
pub use write_through::write_through;

use crate::ProtocolSpec;

/// Constructs every *correct* protocol in the library, in a stable
/// order. This is the set used by the "all protocols" experiments (E5)
/// and the cross-validation suite (E7).
pub fn all_correct() -> Vec<ProtocolSpec> {
    vec![
        write_through(),
        msi(),
        illinois(),
        mesi_mem(),
        write_once(),
        synapse(),
        berkeley(),
        firefly(),
        dragon(),
        moesi(),
    ]
}

/// Constructs every correct **non-atomic** (split-transaction)
/// protocol, in a stable order. Kept separate from [`all_correct`]:
/// the atomic differential suites pin that set, and not every backend
/// supports transient states.
pub fn all_non_atomic() -> Vec<ProtocolSpec> {
    vec![split_msi(), split_mesi()]
}

/// Constructs every *buggy* mutant in the library, in a stable order,
/// together with a short description of the seeded bug. This is the set
/// used by the bug-detection experiment (E6).
pub fn all_buggy() -> Vec<(ProtocolSpec, &'static str)> {
    vec![
        (
            illinois_missing_invalidation(),
            "Shared snooper ignores BusUpgr: remote copies survive a write hit",
        ),
        (
            illinois_missing_writeback(),
            "Dirty replacement drops the block without writing it back",
        ),
        (
            illinois_wrong_exclusive_fill(),
            "read miss always fills Valid-Exclusive, even when copies exist",
        ),
        (
            illinois_dirty_no_flush_on_read(),
            "Dirty snooper supplies on BusRd but forgets the simultaneous memory update",
        ),
        (
            synapse_dirty_ignores_busrd(),
            "Dirty snooper ignores BusRd: requester fills from stale memory",
        ),
        (
            berkeley_owner_dropped(),
            "owned Shared-Dirty replacement drops the only fresh copy",
        ),
        (
            dragon_missing_update(),
            "Shared-Clean snooper does not absorb BusUpd broadcasts",
        ),
        (
            firefly_missing_writethrough(),
            "shared writes skip the memory write-through Firefly relies on",
        ),
        (
            write_once_missing_writethrough(),
            "first write reaches Reserved without the write-through",
        ),
        (
            split_msi_upgrade_race_lost(),
            "pending upgrade ignores a racing BusUpgr: both upgraders reach Modified",
        ),
        (
            split_msi_ignores_readx(),
            "pending upgrade ignores a racing BusRdX: completes against an invalidated copy",
        ),
    ]
}

/// Looks a protocol up by case-insensitive name. Buggy mutants are
/// addressable by their constructor name.
pub fn by_name(name: &str) -> Option<ProtocolSpec> {
    let lower = name.to_ascii_lowercase();
    match lower.as_str() {
        "msi" => Some(msi()),
        "write-through" | "write_through" => Some(write_through()),
        "mesi-mem" | "mesi_mem" => Some(mesi_mem()),
        "illinois" | "mesi" => Some(illinois()),
        "write-once" | "write_once" | "writeonce" | "goodman" => Some(write_once()),
        "synapse" => Some(synapse()),
        "berkeley" => Some(berkeley()),
        "firefly" => Some(firefly()),
        "dragon" => Some(dragon()),
        "moesi" => Some(moesi()),
        "split-msi" | "split_msi" => Some(split_msi()),
        "split-mesi" | "split_mesi" => Some(split_mesi()),
        "split-msi-upgrade-race-lost" => Some(split_msi_upgrade_race_lost()),
        "split-msi-ignores-readx" => Some(split_msi_ignores_readx()),
        "illinois-missing-invalidation" => Some(illinois_missing_invalidation()),
        "illinois-missing-writeback" => Some(illinois_missing_writeback()),
        "illinois-wrong-exclusive-fill" => Some(illinois_wrong_exclusive_fill()),
        "illinois-dirty-no-flush-on-read" => Some(illinois_dirty_no_flush_on_read()),
        "synapse-dirty-ignores-busrd" => Some(synapse_dirty_ignores_busrd()),
        "berkeley-owner-dropped" => Some(berkeley_owner_dropped()),
        "dragon-missing-update" => Some(dragon_missing_update()),
        "firefly-missing-writethrough" => Some(firefly_missing_writethrough()),
        "write-once-missing-writethrough" => Some(write_once_missing_writethrough()),
        _ => None,
    }
}

/// Names accepted by [`by_name`], for CLI help and fuzzing.
pub const PROTOCOL_NAMES: &[&str] = &[
    "write-through",
    "msi",
    "mesi-mem",
    "illinois",
    "write-once",
    "synapse",
    "berkeley",
    "firefly",
    "dragon",
    "moesi",
    "split-msi",
    "split-mesi",
    "split-msi-upgrade-race-lost",
    "split-msi-ignores-readx",
    "illinois-missing-invalidation",
    "illinois-missing-writeback",
    "illinois-wrong-exclusive-fill",
    "illinois-dirty-no-flush-on-read",
    "synapse-dirty-ignores-busrd",
    "berkeley-owner-dropped",
    "dragon-missing-update",
    "firefly-missing-writethrough",
    "write-once-missing-writethrough",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_correct_protocols_build() {
        let all = all_correct();
        assert_eq!(all.len(), 10);
        for p in &all {
            assert!(p.num_states() >= 2, "{} too small", p.name());
        }
    }

    #[test]
    fn all_buggy_protocols_build() {
        let all = all_buggy();
        assert_eq!(all.len(), 11);
    }

    #[test]
    fn non_atomic_set_is_separate_from_the_atomic_set() {
        let split = all_non_atomic();
        assert_eq!(split.len(), 2);
        for p in &split {
            assert!(p.has_transients(), "{} should have transients", p.name());
        }
        for p in all_correct() {
            assert!(!p.has_transients(), "{} must stay atomic", p.name());
        }
    }

    #[test]
    fn by_name_resolves_every_listed_name() {
        for name in PROTOCOL_NAMES {
            assert!(by_name(name).is_some(), "{name} did not resolve");
        }
        assert!(by_name("Illinois").is_some(), "case-insensitive lookup");
        assert!(by_name("no-such-protocol").is_none());
    }

    #[test]
    fn correct_protocol_names_are_unique() {
        let all = all_correct();
        for (i, a) in all.iter().enumerate() {
            for b in &all[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }
}
