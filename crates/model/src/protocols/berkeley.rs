//! The Berkeley ownership protocol.
//!
//! Distinguishes *ownership* from *validity*: the owner of a block
//! supplies it on misses and is responsible for writing it back; main
//! memory may remain stale indefinitely while copies circulate cache to
//! cache. States: `Invalid`, `Valid` (clean, unowned, possibly
//! replicated), `Shared-Dirty` (owned, possibly replicated), `Dirty`
//! (owned, only cached copy). Null characteristic function.

use crate::{BusOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs};

/// Builds the Berkeley protocol.
pub fn berkeley() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Berkeley");
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let v = b.state("Valid", "V", StateAttrs::SHARED_CLEAN);
    let sd = b.state("Shared-Dirty", "SD", StateAttrs::OWNED_SHARED);
    let d = b.state("Dirty", "D", StateAttrs::DIRTY);

    // Invalid.
    b.on(inv, ProcEvent::Read, Outcome::read_miss(v));
    b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(d));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Valid.
    b.on(v, ProcEvent::Read, Outcome::read_hit(v));
    b.on(v, ProcEvent::Write, Outcome::write_hit_invalidate(d));
    b.on(v, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared-Dirty: owned — write hit invalidates and concentrates
    // ownership; replacement must write back.
    b.on(sd, ProcEvent::Read, Outcome::read_hit(sd));
    b.on(sd, ProcEvent::Write, Outcome::write_hit_invalidate(d));
    b.on(sd, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Dirty.
    b.on(d, ProcEvent::Read, Outcome::read_hit(d));
    b.on(d, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(d, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoop reactions. The owner supplies without updating memory.
    b.snoop(v, BusOp::Read, SnoopOutcome::to(v));
    b.snoop(v, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(v, BusOp::Upgrade, SnoopOutcome::to(inv));
    b.snoop(sd, BusOp::Read, SnoopOutcome::supply(sd));
    b.snoop(sd, BusOp::ReadX, SnoopOutcome::supply(inv));
    b.snoop(sd, BusOp::Upgrade, SnoopOutcome::to(inv));
    b.snoop(d, BusOp::Read, SnoopOutcome::supply(sd));
    b.snoop(d, BusOp::ReadX, SnoopOutcome::supply(inv));

    b.build().expect("Berkeley specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Characteristic, DataOp, GlobalCtx};

    #[test]
    fn builds_with_four_states() {
        let p = berkeley();
        assert_eq!(p.num_states(), 4);
        assert_eq!(p.characteristic(), Characteristic::Null);
    }

    #[test]
    fn owner_supplies_without_memory_update() {
        let p = berkeley();
        for owner in ["Shared-Dirty", "Dirty"] {
            let s = p.snoop(p.state_by_name(owner).unwrap(), BusOp::Read);
            assert!(s.supplies_data, "{owner} must supply");
            assert!(
                !s.flushes_to_memory,
                "{owner} must not update memory (the point of Berkeley)"
            );
            assert_eq!(s.next, p.state_by_name("Shared-Dirty").unwrap());
        }
    }

    #[test]
    fn ownership_requires_writeback_on_replacement() {
        let p = berkeley();
        for owner in ["Shared-Dirty", "Dirty"] {
            let o = p.outcome(
                p.state_by_name(owner).unwrap(),
                ProcEvent::Replace,
                GlobalCtx::ALONE,
            );
            assert_eq!(o.data, DataOp::Evict { writeback: true }, "{owner}");
            assert_eq!(o.bus, Some(BusOp::WriteBack), "{owner}");
        }
        // ... while Valid replacement is silent.
        let o = p.outcome(
            p.state_by_name("V").unwrap(),
            ProcEvent::Replace,
            GlobalCtx::ALONE,
        );
        assert_eq!(o.data, DataOp::Evict { writeback: false });
    }

    #[test]
    fn shared_dirty_may_be_replicated_dirty_may_not() {
        let p = berkeley();
        let sd = p.state_by_name("Shared-Dirty").unwrap();
        let d = p.state_by_name("Dirty").unwrap();
        assert!(p.attrs(sd).owned && !p.attrs(sd).exclusive);
        assert!(p.attrs(d).owned && p.attrs(d).exclusive);
    }

    #[test]
    fn two_owned_states_exist() {
        let p = berkeley();
        assert_eq!(p.owned_states().count(), 2);
    }
}
