//! The Xerox Dragon protocol — write-update with write-back.
//!
//! Like Firefly, Dragon never invalidates and relies on the
//! sharing-detection function (the *SharedLine*), but writes to shared
//! blocks are **not** written through: the most recent writer owns the
//! block in state `Shared-Dirty` and is responsible for supplying it and
//! eventually writing it back. States: `Invalid` (absent),
//! `Valid-Exclusive` (clean, only cached copy), `Shared-Clean`
//! (replicated, not owner), `Shared-Dirty` (replicated, owner),
//! `Dirty` (modified, only cached copy).

use crate::{
    BusOp, Characteristic, DataOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder,
    StateAttrs,
};

/// Builds the Dragon protocol.
pub fn dragon() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Dragon").characteristic(Characteristic::SharingDetection);
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let ve = b.state("Valid-Exclusive", "V-Ex", StateAttrs::VALID_EXCLUSIVE);
    let sc = b.state("Shared-Clean", "SC", StateAttrs::SHARED_CLEAN);
    let sd = b.state("Shared-Dirty", "SD", StateAttrs::OWNED_SHARED);
    let d = b.state("Dirty", "Dirty", StateAttrs::DIRTY);

    // Invalid. Read miss: owner (if any) supplies without a memory
    // update; the SharedLine chooses the fill state.
    b.on_sharing(
        inv,
        ProcEvent::Read,
        Outcome::read_miss(ve),
        Outcome::read_miss(sc),
    );
    // Write miss. Alone: load and write locally. Shared: one atomic
    // BusUpd carries the fill and the update; the writer becomes the
    // owner (Shared-Dirty), every other holder absorbs the new value and
    // degrades/stays Shared-Clean; memory is untouched.
    b.on_sharing(
        inv,
        ProcEvent::Write,
        Outcome::write_miss_invalidate(d),
        Outcome {
            next: sd,
            bus: Some(BusOp::Update),
            data: DataOp::Write {
                fill: true,
                through: false,
                broadcast: true,
            },
        },
    );
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Valid-Exclusive.
    b.on(ve, ProcEvent::Read, Outcome::read_hit(ve));
    b.on(ve, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(ve, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared-Clean: a write broadcasts the update and takes ownership;
    // with no other copy left the writer is simply Dirty.
    b.on(sc, ProcEvent::Read, Outcome::read_hit(sc));
    b.on_sharing(
        sc,
        ProcEvent::Write,
        Outcome::write_hit_update(d, false),
        Outcome::write_hit_update(sd, false),
    );
    b.on(sc, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared-Dirty: already the owner; a write refreshes the other
    // copies (or collapses to Dirty if none remain). Replacement must
    // write back.
    b.on(sd, ProcEvent::Read, Outcome::read_hit(sd));
    b.on_sharing(
        sd,
        ProcEvent::Write,
        Outcome::write_hit_update(d, false),
        Outcome::write_hit_update(sd, false),
    );
    b.on(sd, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Dirty.
    b.on(d, ProcEvent::Read, Outcome::read_hit(d));
    b.on(d, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(d, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoop reactions.
    b.snoop(ve, BusOp::Read, SnoopOutcome::supply(sc));
    b.snoop(sc, BusOp::Read, SnoopOutcome::to(sc)); // owner or memory supplies
    b.snoop(sd, BusOp::Read, SnoopOutcome::supply(sd)); // owner supplies, stays owner
    b.snoop(d, BusOp::Read, SnoopOutcome::supply(sd)); // owner supplies, no flush

    // BusUpd: every holder absorbs the new value; a previous owner
    // (or exclusive holder) hands ownership to the writer and becomes
    // Shared-Clean.
    b.snoop(
        ve,
        BusOp::Update,
        SnoopOutcome {
            next: sc,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: true,
        },
    );
    b.snoop(
        sc,
        BusOp::Update,
        SnoopOutcome {
            next: sc,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: true,
        },
    );
    b.snoop(
        sd,
        BusOp::Update,
        SnoopOutcome {
            next: sc,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: true,
        },
    );
    b.snoop(
        d,
        BusOp::Update,
        SnoopOutcome {
            next: sc,
            supplies_data: true,
            flushes_to_memory: false,
            receives_update: true,
        },
    );

    b.build().expect("Dragon specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalCtx;

    #[test]
    fn uses_sharing_detection_with_five_states() {
        let p = dragon();
        assert!(p.uses_sharing_detection());
        assert_eq!(p.num_states(), 5);
    }

    #[test]
    fn shared_writes_do_not_touch_memory() {
        let p = dragon();
        let sc = p.state_by_name("Shared-Clean").unwrap();
        let o = p.outcome(sc, ProcEvent::Write, GlobalCtx::SHARED_CLEAN);
        match o.data {
            DataOp::Write {
                through, broadcast, ..
            } => {
                assert!(!through, "Dragon is write-back: no memory update");
                assert!(broadcast);
            }
            other => panic!("expected a write, got {other:?}"),
        }
        assert_eq!(o.next, p.state_by_name("Shared-Dirty").unwrap());
    }

    #[test]
    fn writer_takes_ownership_previous_owner_degrades() {
        let p = dragon();
        let sd = p.state_by_name("Shared-Dirty").unwrap();
        let s = p.snoop(sd, BusOp::Update);
        assert_eq!(s.next, p.state_by_name("Shared-Clean").unwrap());
        assert!(s.receives_update);
    }

    #[test]
    fn owner_supplies_on_read_miss_without_flushing() {
        let p = dragon();
        for owner in ["Shared-Dirty", "Dirty"] {
            let s = p.snoop(p.state_by_name(owner).unwrap(), BusOp::Read);
            assert!(s.supplies_data, "{owner}");
            assert!(
                !s.flushes_to_memory,
                "{owner}: Dragon never flushes on a read miss"
            );
            assert_eq!(s.next, p.state_by_name("Shared-Dirty").unwrap(), "{owner}");
        }
    }

    #[test]
    fn nothing_is_ever_invalidated() {
        let p = dragon();
        for s in p.valid_states() {
            for bus in BusOp::ALL {
                assert_ne!(p.snoop(s, bus).next, p.invalid());
            }
        }
    }

    #[test]
    fn lone_writer_collapses_to_dirty() {
        let p = dragon();
        for st in ["Shared-Clean", "Shared-Dirty"] {
            let o = p.outcome(
                p.state_by_name(st).unwrap(),
                ProcEvent::Write,
                GlobalCtx::ALONE,
            );
            assert_eq!(o.next, p.state_by_name("Dirty").unwrap(), "{st}");
        }
    }

    #[test]
    fn replacement_writeback_only_for_owners() {
        let p = dragon();
        for (st, wb) in [
            ("V-Ex", false),
            ("Shared-Clean", false),
            ("Shared-Dirty", true),
            ("Dirty", true),
        ] {
            let o = p.outcome(
                p.state_by_name(st).unwrap(),
                ProcEvent::Replace,
                GlobalCtx::ALONE,
            );
            assert_eq!(o.data, DataOp::Evict { writeback: wb }, "{st}");
        }
    }
}
