//! The Synapse N+1 protocol.
//!
//! A minimal ownership protocol with no cache-to-cache transfer and no
//! invalidate-without-data signal. States: `Invalid`, `Valid` (clean),
//! `Dirty` (modified, only cached copy). Its two idiosyncrasies:
//!
//! * a `Dirty` snooper does **not** supply the block on a remote miss —
//!   it aborts the transaction, writes its copy back to memory and
//!   invalidates itself; the requester then obtains the (now fresh)
//!   block from memory;
//! * there is no upgrade signal, so a write hit on a `Valid` block is
//!   handled exactly like a write miss (a full `BusRdX`).
//!
//! Null characteristic function.

use crate::{
    BusOp, DataOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs,
};

/// Builds the Synapse protocol.
pub fn synapse() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Synapse");
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let v = b.state("Valid", "V", StateAttrs::SHARED_CLEAN);
    let d = b.state("Dirty", "D", StateAttrs::DIRTY);

    // Invalid.
    b.on(inv, ProcEvent::Read, Outcome::read_miss(v));
    b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(d));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Valid: a write hit is a full write miss on the bus (no upgrade
    // signal exists); the cache already holds the data so no fill is
    // modelled, but the transaction invalidates every other copy.
    b.on(v, ProcEvent::Read, Outcome::read_hit(v));
    b.on(
        v,
        ProcEvent::Write,
        Outcome {
            next: d,
            bus: Some(BusOp::ReadX),
            data: DataOp::Write {
                fill: false,
                through: false,
                broadcast: false,
            },
        },
    );
    b.on(v, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Dirty.
    b.on(d, ProcEvent::Read, Outcome::read_hit(d));
    b.on(d, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(d, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoop reactions: memory is the only supplier.
    b.snoop(v, BusOp::Read, SnoopOutcome::to(v));
    b.snoop(v, BusOp::ReadX, SnoopOutcome::to(inv));
    // Abort-and-retry: the owner flushes and invalidates itself; the
    // requester is served by (now fresh) memory.
    b.snoop(d, BusOp::Read, SnoopOutcome::flush(inv));
    b.snoop(d, BusOp::ReadX, SnoopOutcome::flush(inv));

    b.build().expect("Synapse specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Characteristic, GlobalCtx};

    #[test]
    fn builds_with_three_states() {
        let p = synapse();
        assert_eq!(p.num_states(), 3);
        assert_eq!(p.characteristic(), Characteristic::Null);
    }

    #[test]
    fn valid_write_hit_is_a_bus_write_miss() {
        let p = synapse();
        let v = p.state_by_name("Valid").unwrap();
        let o = p.outcome(v, ProcEvent::Write, GlobalCtx::ALONE);
        assert_eq!(o.bus, Some(BusOp::ReadX), "no upgrade signal in Synapse");
        assert_eq!(o.next, p.state_by_name("Dirty").unwrap());
    }

    #[test]
    fn dirty_snooper_aborts_flushes_and_invalidates() {
        let p = synapse();
        let d = p.state_by_name("Dirty").unwrap();
        for bus in [BusOp::Read, BusOp::ReadX] {
            let s = p.snoop(d, bus);
            assert!(s.flushes_to_memory, "{bus}: must write back");
            assert!(
                !s.supplies_data,
                "{bus}: Synapse never supplies cache-to-cache"
            );
            assert_eq!(s.next, p.invalid(), "{bus}: owner invalidates itself");
        }
    }

    #[test]
    fn read_miss_lands_valid_regardless_of_context() {
        let p = synapse();
        let v = p.state_by_name("Valid").unwrap();
        for c in GlobalCtx::ALL {
            assert_eq!(p.outcome(p.invalid(), ProcEvent::Read, c).next, v);
        }
    }
}
