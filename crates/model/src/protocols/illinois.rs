//! The Illinois protocol (Papamarcos & Patel) — the paper's running
//! example (§2.3 and Fig. 1).
//!
//! Four states: `Invalid`, `Valid-Exclusive` (clean, only cached copy),
//! `Shared` (clean, possibly replicated), `Dirty` (modified, only cached
//! copy). The characteristic function is the **sharing-detection**
//! function: a read miss fills `Valid-Exclusive` when no other cache
//! holds the block and `Shared` otherwise.
//!
//! Transition rules, verbatim from §2.3 of the paper:
//!
//! 1. *Read hit*: no coherence action.
//! 2. *Read miss*: a Dirty snooper supplies the block **and updates
//!    main memory at the same time**; both caches end `Shared`. If
//!    clean copies exist, one of them supplies and every holder ends
//!    `Shared`. With no cached copy, memory supplies a
//!    `Valid-Exclusive` copy.
//! 3. *Write hit*: `Dirty` stays silently; `Valid-Exclusive` turns
//!    `Dirty` silently; `Shared` invalidates all remote copies and
//!    turns `Dirty`.
//! 4. *Write miss*: like a read miss, but all remote copies are
//!    invalidated and the block is loaded `Dirty`.
//! 5. *Replacement*: a `Dirty` block is written back to main memory.

use crate::{
    BusOp, Characteristic, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs,
};

/// Builds the Illinois protocol.
pub fn illinois() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Illinois").characteristic(Characteristic::SharingDetection);
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let ve = b.state("Valid-Exclusive", "V-Ex", StateAttrs::VALID_EXCLUSIVE);
    let sh = b.state("Shared", "Shared", StateAttrs::SHARED_CLEAN);
    let d = b.state("Dirty", "Dirty", StateAttrs::DIRTY);

    // Invalid: the fill state depends on the sharing-detection function.
    b.on_sharing(
        inv,
        ProcEvent::Read,
        Outcome::read_miss(ve), // f = false: memory supplies Valid-Exclusive
        Outcome::read_miss(sh), // f = true: another cache supplies Shared
    );
    b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(d));
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Valid-Exclusive: silent upgrade on write (the point of the state).
    b.on(ve, ProcEvent::Read, Outcome::read_hit(ve));
    b.on(ve, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(ve, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Shared.
    b.on(sh, ProcEvent::Read, Outcome::read_hit(sh));
    b.on(sh, ProcEvent::Write, Outcome::write_hit_invalidate(d));
    b.on(sh, ProcEvent::Replace, Outcome::evict_clean(inv));

    // Dirty.
    b.on(d, ProcEvent::Read, Outcome::read_hit(d));
    b.on(d, ProcEvent::Write, Outcome::write_hit_silent(d));
    b.on(d, ProcEvent::Replace, Outcome::evict_writeback(inv));

    // Snoop reactions. Illinois always prefers cache-to-cache transfer.
    b.snoop(ve, BusOp::Read, SnoopOutcome::supply(sh));
    b.snoop(ve, BusOp::ReadX, SnoopOutcome::supply(inv));
    b.snoop(sh, BusOp::Read, SnoopOutcome::supply(sh));
    b.snoop(sh, BusOp::ReadX, SnoopOutcome::supply(inv));
    b.snoop(sh, BusOp::Upgrade, SnoopOutcome::to(inv));
    // "Cj supplies the missing block and updates main memory at the same
    // time; both Ci and Cj end up in state Shared."
    b.snoop(d, BusOp::Read, SnoopOutcome::supply_and_flush(sh));
    // Write miss: the Dirty copy is handed to the requester (which will
    // overwrite it); memory is left stale and becomes stale again anyway.
    b.snoop(d, BusOp::ReadX, SnoopOutcome::supply(inv));

    b.build().expect("Illinois specification must validate")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GlobalCtx;

    #[test]
    fn has_the_paper_state_set() {
        let p = illinois();
        assert_eq!(p.num_states(), 4);
        for name in ["Invalid", "Valid-Exclusive", "Shared", "Dirty"] {
            assert!(p.state_by_name(name).is_some(), "missing state {name}");
        }
        assert!(p.uses_sharing_detection());
    }

    #[test]
    fn read_miss_depends_on_sharing() {
        let p = illinois();
        let inv = p.invalid();
        let ve = p.state_by_name("V-Ex").unwrap();
        let sh = p.state_by_name("Shared").unwrap();
        assert_eq!(p.outcome(inv, ProcEvent::Read, GlobalCtx::ALONE).next, ve);
        assert_eq!(
            p.outcome(inv, ProcEvent::Read, GlobalCtx::SHARED_CLEAN)
                .next,
            sh
        );
        assert_eq!(
            p.outcome(inv, ProcEvent::Read, GlobalCtx::OWNED_ELSEWHERE)
                .next,
            sh
        );
    }

    #[test]
    fn valid_exclusive_writes_silently() {
        let p = illinois();
        let ve = p.state_by_name("V-Ex").unwrap();
        let o = p.outcome(ve, ProcEvent::Write, GlobalCtx::ALONE);
        assert_eq!(o.bus, None, "V-Ex write hit must be silent");
        assert_eq!(o.next, p.state_by_name("Dirty").unwrap());
    }

    #[test]
    fn dirty_flushes_on_remote_read_but_not_remote_write() {
        let p = illinois();
        let d = p.state_by_name("Dirty").unwrap();
        assert!(p.snoop(d, BusOp::Read).flushes_to_memory);
        assert_eq!(
            p.snoop(d, BusOp::Read).next,
            p.state_by_name("Shared").unwrap()
        );
        assert!(!p.snoop(d, BusOp::ReadX).flushes_to_memory);
        assert_eq!(p.snoop(d, BusOp::ReadX).next, p.invalid());
    }

    #[test]
    fn shared_write_invalidates_remotes() {
        let p = illinois();
        let sh = p.state_by_name("Shared").unwrap();
        let o = p.outcome(sh, ProcEvent::Write, GlobalCtx::SHARED_CLEAN);
        assert_eq!(o.bus, Some(BusOp::Upgrade));
        assert_eq!(p.snoop(sh, BusOp::Upgrade).next, p.invalid());
    }

    #[test]
    fn exclusivity_attributes_match_paper_semantics() {
        let p = illinois();
        assert!(p.attrs(p.state_by_name("V-Ex").unwrap()).exclusive);
        assert!(p.attrs(p.state_by_name("Dirty").unwrap()).exclusive);
        assert!(!p.attrs(p.state_by_name("Shared").unwrap()).exclusive);
        assert!(p.attrs(p.state_by_name("Dirty").unwrap()).owned);
        assert!(!p.attrs(p.state_by_name("V-Ex").unwrap()).owned);
    }
}
