//! The per-cache (local) transition diagram — Figure 1 of the paper.
//!
//! The paper introduces the Illinois protocol with its local FSM
//! diagram "from the perspective of cache `Cᵢ`": solid edges for
//! processor-induced transitions (labelled with the event and, for
//! sharing-detection protocols, the observed context) and dashed edges
//! for bus-induced (snoop) transitions. This module renders that
//! diagram for any [`ProtocolSpec`], both as an edge list and as
//! Graphviz DOT.

use crate::{GlobalCtx, ProcEvent, ProtocolSpec, StateId};

/// What induced a local transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// The local processor (solid edges in Fig. 1).
    Processor,
    /// A snooped bus transaction (dashed edges in Fig. 1).
    Snoop,
}

/// One edge of the local diagram.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalEdge {
    /// Source state.
    pub from: StateId,
    /// Target state.
    pub to: StateId,
    /// Label, e.g. `R(alone)`, `W`, `Z`, `BusRdX`.
    pub label: String,
    /// Processor- or snoop-induced.
    pub kind: EdgeKind,
}

/// Collects the deduplicated local transition edges of `spec`.
///
/// Context-independent processor transitions are labelled with the
/// bare event; context-dependent ones get one edge per distinct
/// context outcome, labelled `R(alone)` / `R(shared)` / `R(owned)`.
/// Snoop edges are emitted only for bus operations the protocol
/// actually generates, and only when the snooper changes state.
pub fn local_edges(spec: &ProtocolSpec) -> Vec<LocalEdge> {
    let mut out: Vec<LocalEdge> = Vec::new();
    let push = |e: LocalEdge, out: &mut Vec<LocalEdge>| {
        if !out.contains(&e) {
            out.push(e);
        }
    };

    for s in spec.state_ids() {
        for e in ProcEvent::ALL {
            if s.is_invalid() && e == ProcEvent::Replace {
                continue;
            }
            let alone = spec.outcome(s, e, GlobalCtx::ALONE);
            let shared = spec.outcome(s, e, GlobalCtx::SHARED_CLEAN);
            let owned = spec.outcome(s, e, GlobalCtx::OWNED_ELSEWHERE);
            if alone.next == shared.next && shared.next == owned.next {
                push(
                    LocalEdge {
                        from: s,
                        to: alone.next,
                        label: e.label().to_string(),
                        kind: EdgeKind::Processor,
                    },
                    &mut out,
                );
            } else {
                for (o, ctx) in [(alone, "alone"), (shared, "shared"), (owned, "owned")] {
                    push(
                        LocalEdge {
                            from: s,
                            to: o.next,
                            label: format!("{}({ctx})", e.label()),
                            kind: EdgeKind::Processor,
                        },
                        &mut out,
                    );
                }
            }
        }
        if !s.is_invalid() {
            for &bus in spec.emitted_bus_ops() {
                let sn = spec.snoop(s, bus);
                if sn.next != s {
                    push(
                        LocalEdge {
                            from: s,
                            to: sn.next,
                            label: bus.mnemonic().to_string(),
                            kind: EdgeKind::Snoop,
                        },
                        &mut out,
                    );
                }
            }
        }
    }
    out
}

/// Renders the local diagram as Graphviz DOT, Figure-1 style: solid
/// processor edges, dashed snoop edges.
pub fn local_dot(spec: &ProtocolSpec) -> String {
    use std::fmt::Write as _;
    let mut dot = String::new();
    let _ = writeln!(dot, "digraph \"{} (local FSM)\" {{", spec.name());
    let _ = writeln!(dot, "  node [shape=circle, fontname=\"Helvetica\"];");
    for s in spec.state_ids() {
        let _ = writeln!(dot, "  q{} [label=\"{}\"];", s.0, spec.state(s).short);
    }
    for e in local_edges(spec) {
        let style = match e.kind {
            EdgeKind::Processor => "solid",
            EdgeKind::Snoop => "dashed",
        };
        let _ = writeln!(
            dot,
            "  q{} -> q{} [label=\"{}\", style={style}];",
            e.from.0, e.to.0, e.label
        );
    }
    let _ = writeln!(dot, "}}");
    dot
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{illinois, msi};

    fn has(edges: &[LocalEdge], spec: &ProtocolSpec, from: &str, label: &str, to: &str) -> bool {
        let f = spec.state_by_name(from).unwrap();
        let t = spec.state_by_name(to).unwrap();
        edges
            .iter()
            .any(|e| e.from == f && e.to == t && e.label == label)
    }

    #[test]
    fn illinois_matches_figure_1() {
        let spec = illinois();
        let edges = local_edges(&spec);
        // Processor-induced edges of Fig. 1.
        assert!(has(&edges, &spec, "Invalid", "R(alone)", "V-Ex"));
        assert!(has(&edges, &spec, "Invalid", "R(shared)", "Shared"));
        assert!(has(&edges, &spec, "Invalid", "R(owned)", "Shared"));
        assert!(has(&edges, &spec, "Invalid", "W", "Dirty"));
        assert!(has(&edges, &spec, "V-Ex", "W", "Dirty"));
        assert!(has(&edges, &spec, "V-Ex", "R", "V-Ex"));
        assert!(has(&edges, &spec, "Shared", "W", "Dirty"));
        assert!(has(&edges, &spec, "Dirty", "Z", "Invalid"));
        // Bus-induced (dashed) edges.
        assert!(has(&edges, &spec, "V-Ex", "BusRd", "Shared"));
        assert!(has(&edges, &spec, "V-Ex", "BusRdX", "Invalid"));
        assert!(has(&edges, &spec, "Shared", "BusUpgr", "Invalid"));
        assert!(has(&edges, &spec, "Dirty", "BusRd", "Shared"));
        assert!(has(&edges, &spec, "Dirty", "BusRdX", "Invalid"));
    }

    #[test]
    fn context_independent_protocols_have_plain_labels() {
        let spec = msi();
        let edges = local_edges(&spec);
        assert!(edges.iter().all(|e| !e.label.contains('(')));
        assert!(has(&edges, &spec, "Invalid", "R", "Shared"));
    }

    #[test]
    fn dot_marks_snoop_edges_dashed() {
        let spec = illinois();
        let dot = local_dot(&spec);
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("style=solid"));
        assert!(dot.starts_with("digraph"));
    }

    #[test]
    fn no_replace_edge_from_invalid() {
        let spec = illinois();
        let inv = spec.invalid();
        assert!(local_edges(&spec)
            .iter()
            .all(|e| !(e.from == inv && e.label.starts_with('Z'))));
    }
}
