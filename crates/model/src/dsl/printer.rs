//! Pretty-printer: [`ProtocolSpec`] → `.ccv` source.
//!
//! The inverse of [`super::parse_protocol`], used by `ccv export` and
//! by the round-trip property tests (print → parse must reproduce the
//! spec exactly). Context-dependent outcomes are printed as
//! `when alone` / `when shared` / `when owned` rules, relying on the
//! language's later-rule-overrides semantics.

use crate::{BusOp, Characteristic, DataOp, GlobalCtx, Outcome, ProcEvent, ProtocolSpec};
use std::fmt::Write as _;

fn bus_name(b: BusOp) -> &'static str {
    b.mnemonic()
}

fn event_name(e: ProcEvent) -> &'static str {
    match e {
        ProcEvent::Read => "read",
        ProcEvent::Write => "write",
        ProcEvent::Replace => "replace",
        // Never printed as a rule keyword: completions render as
        // `await` blocks whose event word comes from the data
        // operation (see `completion_rule_text`).
        ProcEvent::Complete => "complete",
    }
}

fn push_data_modifiers(s: &mut String, data: DataOp) {
    match data {
        DataOp::Read { fill: true } => s.push_str(" fill"),
        DataOp::Write {
            fill,
            through,
            broadcast,
        } => {
            if fill {
                s.push_str(" fill");
            }
            if through {
                s.push_str(" through");
            }
            if broadcast {
                s.push_str(" broadcast");
            }
        }
        DataOp::Evict { writeback: true } => s.push_str(" writeback"),
        _ => {}
    }
}

fn rule_text(spec: &ProtocolSpec, e: ProcEvent, when: Option<&str>, o: &Outcome) -> String {
    let mut s = String::new();
    let _ = write!(s, "{}", event_name(e));
    if let Some(w) = when {
        let _ = write!(s, " when {w}");
    }
    let _ = write!(s, " -> {}", spec.state(o.next).name);
    if let Some(b) = o.bus {
        let _ = write!(s, " via {}", bus_name(b));
    }
    push_data_modifiers(&mut s, o.data);
    // A rule into a transient state is the request phase of a
    // multi-phase transaction.
    if spec.is_transient(o.next) {
        s.push_str(" phase");
    }
    s.push(';');
    s
}

/// Completion rules print inside `await` blocks: the event word is the
/// pending operation the completion performs, and the bus is implied by
/// the block header.
fn completion_rule_text(spec: &ProtocolSpec, when: Option<&str>, o: &Outcome) -> String {
    let mut s = String::new();
    s.push_str(match o.data {
        DataOp::Read { .. } => "read",
        DataOp::Write { .. } => "write",
        DataOp::Evict { .. } => "replace",
        // No valid completion moves no data; print the closest word so
        // hand-mutated specs still export without panicking.
        DataOp::None => "read",
    });
    if let Some(w) = when {
        let _ = write!(s, " when {w}");
    }
    let _ = write!(s, " -> {}", spec.state(o.next).name);
    push_data_modifiers(&mut s, o.data);
    s.push(';');
    s
}

/// Renders `spec` as `.ccv` source text.
pub fn to_dsl(spec: &ProtocolSpec) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# {} — exported by ccv; `ccv verify <this file>` re-checks it.",
        spec.name()
    );
    let _ = writeln!(out, "protocol {} {{", sanitize(spec.name()));
    if spec.characteristic() == Characteristic::SharingDetection {
        let _ = writeln!(out, "    characteristic sharing;");
        let _ = writeln!(out);
    }

    // States.
    for id in spec.state_ids() {
        let info = spec.state(id);
        let short = if info.short != info.name {
            format!(" as {}", info.short)
        } else {
            String::new()
        };
        let mut attrs = String::new();
        if spec.is_transient(id) {
            if info.attrs.holds_copy {
                attrs.push_str(" copy");
            }
            attrs.push_str(" transient");
        } else if !info.attrs.holds_copy {
            attrs.push_str(" invalid");
        } else {
            attrs.push_str(" copy");
            if info.attrs.owned {
                attrs.push_str(" owned");
            }
            if info.attrs.exclusive {
                attrs.push_str(" exclusive");
            }
            if info.attrs.writable_silently {
                attrs.push_str(" silent-write");
            }
        }
        let _ = writeln!(out, "    state {}{short}{attrs};", info.name);
    }

    // Processor rules. A transient state's Σ rows are the synthesized
    // stall self-loops; they are omitted (the loader re-synthesizes
    // them) unless a mutated spec made one observable.
    for id in spec.state_ids() {
        let stall = Outcome::silent(id);
        let mut lines: Vec<String> = Vec::new();
        for e in ProcEvent::ALL {
            let alone = spec.outcome(id, e, GlobalCtx::ALONE);
            let shared = spec.outcome(id, e, GlobalCtx::SHARED_CLEAN);
            let owned = spec.outcome(id, e, GlobalCtx::OWNED_ELSEWHERE);
            if spec.is_transient(id) && alone == stall && shared == stall && owned == stall {
                continue;
            }
            if alone == shared && shared == owned {
                lines.push(rule_text(spec, e, None, &alone));
            } else if shared == owned {
                lines.push(rule_text(spec, e, Some("alone"), &alone));
                lines.push(rule_text(spec, e, Some("shared"), &shared));
            } else {
                lines.push(rule_text(spec, e, Some("alone"), &alone));
                lines.push(rule_text(spec, e, Some("shared"), &shared));
                lines.push(rule_text(spec, e, Some("owned"), &owned));
            }
        }
        if lines.is_empty() {
            continue;
        }
        let _ = writeln!(out, "\n    from {} {{", spec.state(id).name);
        for line in lines {
            let _ = writeln!(out, "        {line}");
        }
        let _ = writeln!(out, "    }}");
    }

    // Completion phases of transient states.
    for id in spec.state_ids() {
        let Some(info) = spec.transient_info(id) else {
            continue;
        };
        let _ = writeln!(
            out,
            "\n    await {} via {} {{",
            spec.state(id).name,
            bus_name(info.pending)
        );
        let e = ProcEvent::Complete;
        let alone = spec.outcome(id, e, GlobalCtx::ALONE);
        let shared = spec.outcome(id, e, GlobalCtx::SHARED_CLEAN);
        let owned = spec.outcome(id, e, GlobalCtx::OWNED_ELSEWHERE);
        if alone == shared && shared == owned {
            let _ = writeln!(out, "        {}", completion_rule_text(spec, None, &alone));
        } else if shared == owned {
            let _ = writeln!(
                out,
                "        {}",
                completion_rule_text(spec, Some("alone"), &alone)
            );
            let _ = writeln!(
                out,
                "        {}",
                completion_rule_text(spec, Some("shared"), &shared)
            );
        } else {
            let _ = writeln!(
                out,
                "        {}",
                completion_rule_text(spec, Some("alone"), &alone)
            );
            let _ = writeln!(
                out,
                "        {}",
                completion_rule_text(spec, Some("shared"), &shared)
            );
            let _ = writeln!(
                out,
                "        {}",
                completion_rule_text(spec, Some("owned"), &owned)
            );
        }
        let _ = writeln!(out, "    }}");
    }

    // Snoop rules (skip pure-ignore defaults).
    for id in spec.state_ids() {
        let mut rules: Vec<String> = Vec::new();
        for b in BusOp::ALL {
            let sn = spec.snoop(id, b);
            let is_default =
                sn.next == id && !sn.supplies_data && !sn.flushes_to_memory && !sn.receives_update;
            if is_default {
                continue;
            }
            let mut r = format!("{} -> {}", bus_name(b), spec.state(sn.next).name);
            if sn.supplies_data {
                r.push_str(" supply");
            }
            if sn.flushes_to_memory {
                r.push_str(" flush");
            }
            if sn.receives_update {
                r.push_str(" update");
            }
            r.push(';');
            rules.push(r);
        }
        if !rules.is_empty() {
            let _ = writeln!(out, "\n    snoop {} {{", spec.state(id).name);
            for r in rules {
                let _ = writeln!(out, "        {r}");
            }
            let _ = writeln!(out, "    }}");
        }
    }

    let _ = writeln!(out, "}}");
    out
}

/// Protocol names may contain characters the grammar does not accept
/// (the buggy mutants use `/`); map them to identifier-safe ones.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == '-' {
                c
            } else {
                '-'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols;

    #[test]
    fn export_contains_all_sections() {
        let text = to_dsl(&protocols::illinois());
        assert!(text.contains("protocol Illinois {"));
        assert!(text.contains("characteristic sharing;"));
        assert!(text.contains("state Valid-Exclusive as V-Ex copy exclusive;"));
        assert!(text.contains("from Invalid {"));
        assert!(text.contains("read when alone -> Valid-Exclusive via BusRd fill;"));
        assert!(text.contains("snoop Dirty {"));
        assert!(text.contains("BusRd -> Shared supply flush;"));
    }

    #[test]
    fn null_characteristic_is_omitted() {
        let text = to_dsl(&protocols::msi());
        assert!(!text.contains("characteristic"));
    }

    #[test]
    fn sanitize_replaces_slashes() {
        assert_eq!(sanitize("Illinois/bug"), "Illinois-bug");
        assert_eq!(sanitize("A_b-9"), "A_b-9");
    }

    #[test]
    fn exported_mutants_reparse() {
        // Mutant names contain '/', which sanitisation fixes; the spec
        // itself may be incorrect (that is the point) but must still
        // parse — buggy protocols are valid *language*, they just fail
        // *verification*. Mutants that break builder validation
        // (e.g. a mutated Replace outcome) are expected to be rejected
        // at lowering; both outcomes are acceptable, panics are not.
        for (spec, _) in protocols::all_buggy() {
            let text = to_dsl(&spec);
            let _ = crate::dsl::parse_protocol(&text);
        }
    }
}
