//! Recursive-descent parser for the `.ccv` protocol language.

use super::ast::{AwaitBlock, FromBlock, ProcRule, ProtocolAst, SnoopBlock, SnoopRule, StateDecl};
use super::lexer::{Span, Token, TokenKind};
use super::DslError;

struct Parser<'a> {
    tokens: &'a [Token],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos]
    }

    fn bump(&mut self) -> &Token {
        let t = &self.tokens[self.pos];
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn span(&self) -> Span {
        self.peek().span
    }

    fn expect_ident(&mut self, what: &str) -> Result<(String, Span), DslError> {
        let span = self.span();
        match &self.bump().kind {
            TokenKind::Ident(s) => Ok((s.clone(), span)),
            other => Err(DslError::new(
                span,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<Span, DslError> {
        let (s, span) = self.expect_ident(&format!("'{kw}'"))?;
        if s == kw {
            Ok(span)
        } else {
            Err(DslError::new(span, format!("expected '{kw}', found '{s}'")))
        }
    }

    fn expect(&mut self, kind: TokenKind, what: &str) -> Result<Span, DslError> {
        let span = self.span();
        let found = self.bump();
        if found.kind == kind {
            Ok(span)
        } else {
            Err(DslError::new(
                span,
                format!("expected {what}, found {:?}", found.kind),
            ))
        }
    }

    fn at_ident(&self, s: &str) -> bool {
        matches!(&self.peek().kind, TokenKind::Ident(i) if i == s)
    }

    fn parse_file(&mut self) -> Result<ProtocolAst, DslError> {
        self.expect_keyword("protocol")?;
        let (name, _) = self.expect_ident("protocol name")?;
        self.expect(TokenKind::LBrace, "'{'")?;

        let mut ast = ProtocolAst {
            name,
            characteristic: None,
            states: Vec::new(),
            froms: Vec::new(),
            snoops: Vec::new(),
            awaits: Vec::new(),
        };

        loop {
            let span = self.span();
            match &self.peek().kind {
                TokenKind::RBrace => {
                    self.bump();
                    break;
                }
                TokenKind::Eof => {
                    return Err(DslError::new(span, "unexpected end of file (missing '}')"))
                }
                TokenKind::Ident(kw) => match kw.as_str() {
                    "characteristic" => {
                        self.bump();
                        let (v, vspan) = self.expect_ident("'null' or 'sharing'")?;
                        if ast.characteristic.is_some() {
                            return Err(DslError::new(vspan, "duplicate characteristic item"));
                        }
                        ast.characteristic = Some((v, vspan));
                        self.expect(TokenKind::Semi, "';'")?;
                    }
                    "state" => {
                        self.bump();
                        let (name, nspan) = self.expect_ident("state name")?;
                        let short = if self.at_ident("as") {
                            self.bump();
                            Some(self.expect_ident("short state name")?.0)
                        } else {
                            None
                        };
                        let mut attrs = Vec::new();
                        while let TokenKind::Ident(a) = &self.peek().kind {
                            attrs.push((a.clone(), self.span()));
                            self.bump();
                        }
                        self.expect(TokenKind::Semi, "';'")?;
                        ast.states.push(StateDecl {
                            name,
                            short,
                            attrs,
                            span: nspan,
                        });
                    }
                    "from" => {
                        self.bump();
                        let (state, sspan) = self.expect_ident("state name")?;
                        self.expect(TokenKind::LBrace, "'{'")?;
                        let mut rules = Vec::new();
                        while !matches!(self.peek().kind, TokenKind::RBrace) {
                            rules.push(self.parse_proc_rule()?);
                        }
                        self.expect(TokenKind::RBrace, "'}'")?;
                        ast.froms.push(FromBlock {
                            state,
                            rules,
                            span: sspan,
                        });
                    }
                    "snoop" => {
                        self.bump();
                        let (state, sspan) = self.expect_ident("state name")?;
                        self.expect(TokenKind::LBrace, "'{'")?;
                        let mut rules = Vec::new();
                        while !matches!(self.peek().kind, TokenKind::RBrace) {
                            rules.push(self.parse_snoop_rule()?);
                        }
                        self.expect(TokenKind::RBrace, "'}'")?;
                        ast.snoops.push(SnoopBlock {
                            state,
                            rules,
                            span: sspan,
                        });
                    }
                    "await" => {
                        self.bump();
                        let (state, sspan) = self.expect_ident("state name")?;
                        self.expect_keyword("via")?;
                        let (bus, bus_span) = self.expect_ident("bus mnemonic")?;
                        self.expect(TokenKind::LBrace, "'{'")?;
                        let mut rules = Vec::new();
                        while !matches!(self.peek().kind, TokenKind::RBrace) {
                            rules.push(self.parse_proc_rule()?);
                        }
                        self.expect(TokenKind::RBrace, "'}'")?;
                        ast.awaits.push(AwaitBlock {
                            state,
                            bus,
                            bus_span,
                            rules,
                            span: sspan,
                        });
                    }
                    other => {
                        return Err(DslError::new(
                            span,
                            format!(
                                "expected 'characteristic', 'state', 'from', 'snoop' or 'await', found '{other}'"
                            ),
                        ))
                    }
                },
                other => {
                    return Err(DslError::new(span, format!("unexpected {other:?}")));
                }
            }
        }

        if !matches!(self.peek().kind, TokenKind::Eof) {
            return Err(DslError::new(
                self.span(),
                "trailing input after the protocol block",
            ));
        }
        Ok(ast)
    }

    fn parse_proc_rule(&mut self) -> Result<ProcRule, DslError> {
        let span = self.span();
        let (event, espan) = self.expect_ident("'read', 'write' or 'replace'")?;
        if !matches!(event.as_str(), "read" | "write" | "replace") {
            return Err(DslError::new(
                espan,
                format!("expected 'read', 'write' or 'replace', found '{event}'"),
            ));
        }
        let when = if self.at_ident("when") {
            self.bump();
            Some(self.expect_ident("'alone', 'shared' or 'owned'")?)
        } else {
            None
        };
        self.expect(TokenKind::Arrow, "'->'")?;
        let target_span = self.span();
        let (target, _) = self.expect_ident("target state name")?;
        let via = if self.at_ident("via") {
            self.bump();
            Some(self.expect_ident("bus mnemonic")?)
        } else {
            None
        };
        let mut modifiers = Vec::new();
        while let TokenKind::Ident(m) = &self.peek().kind {
            modifiers.push((m.clone(), self.span()));
            self.bump();
        }
        self.expect(TokenKind::Semi, "';'")?;
        Ok(ProcRule {
            event,
            when,
            target,
            via,
            modifiers,
            span,
            target_span,
        })
    }

    fn parse_snoop_rule(&mut self) -> Result<SnoopRule, DslError> {
        let span = self.span();
        let (bus, _) = self.expect_ident("bus mnemonic")?;
        self.expect(TokenKind::Arrow, "'->'")?;
        let target_span = self.span();
        let (target, _) = self.expect_ident("target state name")?;
        let mut modifiers = Vec::new();
        while let TokenKind::Ident(m) = &self.peek().kind {
            modifiers.push((m.clone(), self.span()));
            self.bump();
        }
        self.expect(TokenKind::Semi, "';'")?;
        Ok(SnoopRule {
            bus,
            target,
            modifiers,
            span,
            target_span,
        })
    }
}

/// Parses a token stream into an AST.
pub fn parse_ast(tokens: &[Token]) -> Result<ProtocolAst, DslError> {
    debug_assert!(matches!(
        tokens.last().map(|t| &t.kind),
        Some(TokenKind::Eof)
    ));
    Parser { tokens, pos: 0 }.parse_file()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::lexer::tokenize;

    fn parse(src: &str) -> Result<ProtocolAst, DslError> {
        parse_ast(&tokenize(src).unwrap())
    }

    #[test]
    fn parses_structure() {
        let ast = parse(
            "protocol P { characteristic sharing; state Invalid invalid; \
             from Invalid { read when alone -> Invalid via BusRd fill; } \
             snoop Invalid { BusRd -> Invalid supply; } }",
        )
        .unwrap();
        assert_eq!(ast.name, "P");
        assert_eq!(ast.characteristic.as_ref().unwrap().0, "sharing");
        assert_eq!(ast.states.len(), 1);
        assert_eq!(ast.froms.len(), 1);
        assert_eq!(ast.snoops.len(), 1);
        let r = &ast.froms[0].rules[0];
        assert_eq!(r.event, "read");
        assert_eq!(r.when.as_ref().unwrap().0, "alone");
        assert_eq!(r.via.as_ref().unwrap().0, "BusRd");
        assert_eq!(r.modifiers[0].0, "fill");
        let s = &ast.snoops[0].rules[0];
        assert_eq!(s.bus, "BusRd");
        assert_eq!(s.modifiers[0].0, "supply");
    }

    #[test]
    fn parses_await_block() {
        let ast = parse(
            "protocol P { state IS_D transient; \
             await IS_D via BusRd { read -> S fill; read when alone -> E fill; } }",
        )
        .unwrap();
        assert_eq!(ast.awaits.len(), 1);
        let a = &ast.awaits[0];
        assert_eq!(a.state, "IS_D");
        assert_eq!(a.bus, "BusRd");
        assert_eq!(a.rules.len(), 2);
        assert_eq!(a.rules[1].when.as_ref().unwrap().0, "alone");
    }

    #[test]
    fn rejects_await_without_via() {
        let err = parse("protocol P { await IS_D { read -> S; } }").unwrap_err();
        assert!(err.message.contains("'via'"), "{err}");
    }

    #[test]
    fn rejects_bad_event() {
        let err = parse("protocol P { from X { fetch -> Y; } }").unwrap_err();
        assert!(err.message.contains("fetch"), "{err}");
    }

    #[test]
    fn rejects_duplicate_characteristic() {
        let err = parse("protocol P { characteristic null; characteristic sharing; }").unwrap_err();
        assert!(err.message.contains("duplicate"), "{err}");
    }

    #[test]
    fn rejects_missing_semicolon() {
        let err = parse("protocol P { state Invalid invalid }").unwrap_err();
        assert!(err.message.contains("';'"), "{err}");
    }

    #[test]
    fn rejects_unclosed_block() {
        let err = parse("protocol P { state Invalid invalid;").unwrap_err();
        assert!(err.message.contains("end of file"), "{err}");
    }

    #[test]
    fn rejects_trailing_input() {
        let err = parse("protocol P { } extra").unwrap_err();
        assert!(err.message.contains("trailing"), "{err}");
    }
}
