//! Tokenizer for the `.ccv` protocol language.
//!
//! Tokens are identifiers (which include protocol keywords — the
//! parser resolves them contextually, so state names like `from` are
//! the only names off limits), punctuation (`{` `}` `;` `->`), and
//! end-of-file. `#` comments run to end of line. Identifiers may
//! contain `-` (state names like `V-Ex`), disambiguated from `->` by
//! one character of lookahead.

use super::DslError;

/// Source position of a token (1-based).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Line number.
    pub line: usize,
    /// Column number.
    pub col: usize,
}

/// Kinds of token.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword.
    Ident(String),
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `->`
    Arrow,
    /// End of input.
    Eof,
}

/// A token with its source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What it is.
    pub kind: TokenKind,
    /// Where it starts.
    pub span: Span,
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes `source`; the result always ends with an [`TokenKind::Eof`]
/// token carrying the final position.
pub fn tokenize(source: &str) -> Result<Vec<Token>, DslError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line = 1usize;
    let mut col = 1usize;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        let span = Span { line, col };
        match c {
            ' ' | '\t' | '\r' | '\n' => bump!(),
            '#' => {
                while i < chars.len() && chars[i] != '\n' {
                    bump!();
                }
            }
            '{' => {
                tokens.push(Token {
                    kind: TokenKind::LBrace,
                    span,
                });
                bump!();
            }
            '}' => {
                tokens.push(Token {
                    kind: TokenKind::RBrace,
                    span,
                });
                bump!();
            }
            ';' => {
                tokens.push(Token {
                    kind: TokenKind::Semi,
                    span,
                });
                bump!();
            }
            '-' => {
                if chars.get(i + 1) == Some(&'>') {
                    tokens.push(Token {
                        kind: TokenKind::Arrow,
                        span,
                    });
                    bump!();
                    bump!();
                } else {
                    return Err(DslError::new(span, "stray '-' (did you mean '->'?)"));
                }
            }
            c if is_ident_start(c) => {
                let mut s = String::new();
                while i < chars.len() {
                    let c = chars[i];
                    if is_ident_continue(c) {
                        s.push(c);
                        bump!();
                    } else if c == '-' && chars.get(i + 1).copied().is_some_and(is_ident_continue) {
                        // A '-' inside an identifier (V-Ex, silent-write),
                        // not the start of an arrow.
                        s.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Ident(s),
                    span,
                });
            }
            other => {
                return Err(DslError::new(
                    span,
                    format!("unexpected character '{other}'"),
                ));
            }
        }
    }
    tokens.push(Token {
        kind: TokenKind::Eof,
        span: Span { line, col },
    });
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            kinds("a { b ; } ->"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::LBrace,
                TokenKind::Ident("b".into()),
                TokenKind::Semi,
                TokenKind::RBrace,
                TokenKind::Arrow,
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn hyphenated_identifiers_vs_arrows() {
        assert_eq!(
            kinds("V-Ex -> silent-write"),
            vec![
                TokenKind::Ident("V-Ex".into()),
                TokenKind::Arrow,
                TokenKind::Ident("silent-write".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            kinds("a # comment -> { } ;\nb"),
            vec![
                TokenKind::Ident("a".into()),
                TokenKind::Ident("b".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let toks = tokenize("ab\n  cd").unwrap();
        assert_eq!(toks[0].span, Span { line: 1, col: 1 });
        assert_eq!(toks[1].span, Span { line: 2, col: 3 });
    }

    #[test]
    fn stray_dash_is_an_error() {
        let err = tokenize("a - b").unwrap_err();
        assert!(err.message.contains("stray"), "{err}");
        assert_eq!((err.line, err.col), (1, 3));
    }

    #[test]
    fn unexpected_character_is_an_error() {
        let err = tokenize("a $ b").unwrap_err();
        assert!(err.message.contains('$'), "{err}");
    }

    #[test]
    fn trailing_dash_then_digit_continues_ident() {
        assert_eq!(
            kinds("n-1"),
            vec![TokenKind::Ident("n-1".into()), TokenKind::Eof]
        );
    }
}
