//! The `ccv` protocol description language.
//!
//! The paper's conclusion (§5.0) calls for "the definition of a formal
//! specification language capable of describing both the protocol
//! behavior and the processes implementing it \[to\] facilitate greater
//! automatization of the verification activities". This module is that
//! language for the behaviour level: a small declarative text format
//! that lowers onto [`crate::ProtocolSpec`] through the same validating
//! builder the Rust constructors use — so a protocol written in a
//! `.ccv` file gets exactly the same static checks and can be fed
//! directly to the verifier, the enumerator and the simulator.
//!
//! # Example
//!
//! ```text
//! # The Illinois protocol (Papamarcos & Patel).
//! protocol Illinois {
//!     characteristic sharing;
//!
//!     state Invalid invalid;
//!     state V-Ex    copy exclusive;
//!     state Shared  copy;
//!     state Dirty   copy owned exclusive silent-write;
//!
//!     from Invalid {
//!         read when alone  -> V-Ex   via BusRd fill;
//!         read when shared -> Shared via BusRd fill;
//!         write -> Dirty via BusRdX fill;
//!         replace -> Invalid;
//!     }
//!     from Dirty {
//!         read -> Dirty;
//!         write -> Dirty;
//!         replace -> Invalid writeback;
//!     }
//!     snoop Dirty {
//!         BusRd  -> Shared  supply flush;
//!         BusRdX -> Invalid supply;
//!     }
//! }
//! ```
//!
//! # Grammar
//!
//! ```text
//! file       := 'protocol' NAME '{' item* '}'
//! item       := 'characteristic' ('null' | 'sharing') ';'
//!             | 'state' NAME ('as' SHORT)? attr* ';'
//!             | 'from' NAME '{' proc-rule* '}'
//!             | 'snoop' NAME '{' snoop-rule* '}'
//!             | 'await' NAME 'via' BUS '{' proc-rule* '}'
//! attr       := 'invalid' | 'copy' | 'owned' | 'exclusive'
//!             | 'silent-write' | 'transient'
//! proc-rule  := event ('when' ctx)? '->' NAME ('via' BUS)? mod* ';'
//! event      := 'read' | 'write' | 'replace'
//! ctx        := 'alone' | 'shared' | 'owned'
//! mod        := 'fill' | 'through' | 'broadcast' | 'writeback' | 'phase'
//! snoop-rule := BUS '->' NAME smod* ';'
//! smod       := 'supply' | 'flush' | 'update'
//! BUS        := 'BusRd' | 'BusRdX' | 'BusUpgr' | 'BusUpd' | 'BusWB'
//! ```
//!
//! `#` starts a line comment. Rule order matters: a later rule for the
//! same (state, event, context) overrides an earlier one, so
//! `write -> X; write when owned -> Y;` reads naturally as "Y in the
//! owned case, X otherwise".
//!
//! Data movement is inferred from the event and the modifiers exactly
//! as [`crate::DataOp`] is structured: `read` + `fill` is a read miss,
//! `write` + `through`/`broadcast` is a write-through / write-update
//! store, `replace` + `writeback` flushes the victim (and implies
//! `via BusWB` when no bus is given).
//!
//! # Split-transaction protocols
//!
//! A `transient` state models a cache waiting for the bus: the request
//! phase of a multi-phase transaction enters it with a `phase` rule
//! (no bus transaction, no data movement — `read -> IS_D phase;`), the
//! processor stalls while the state is held, and the mandatory
//! `await NAME via BUS { … }` block describes the completion phase:
//! which transaction is pending and what happens — including data
//! movement and context-dependent targets — once the bus is finally
//! granted. Other caches' transactions interleave freely between the
//! two phases, and their snoop rules may retarget a transient state
//! (e.g. converting a pending upgrade into a pending read-exclusive
//! when an invalidation races past it). Transient states may be
//! copy-less (a miss in flight) or hold a copy (an upgrade in flight);
//! they never carry `owned`/`exclusive`/`silent-write`.

mod ast;
mod lexer;
mod lower;
mod parser;
mod printer;

pub use ast::{AwaitBlock, FromBlock, ProcRule, ProtocolAst, SnoopBlock, SnoopRule, StateDecl};
pub use lexer::{tokenize, Span, Token, TokenKind};
pub use lower::lower;
pub use parser::parse_ast;
pub use printer::to_dsl;

use crate::ProtocolSpec;
use core::fmt;

/// A parse or lowering error with source position.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DslError {
    /// 1-based line number.
    pub line: usize,
    /// 1-based column number.
    pub col: usize,
    /// What went wrong.
    pub message: String,
}

impl DslError {
    pub(crate) fn new(span: Span, message: impl Into<String>) -> DslError {
        DslError {
            line: span.line,
            col: span.col,
            message: message.into(),
        }
    }
}

impl fmt::Display for DslError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for DslError {}

/// Parses a `.ccv` source text into a fully validated protocol.
///
/// ```
/// use ccv_model::dsl::parse_protocol;
///
/// let spec = parse_protocol(r#"
///     protocol TwoState {
///         state Invalid invalid;
///         state Modified as M copy owned exclusive silent-write;
///         from Invalid {
///             read  -> Modified via BusRdX fill;
///             write -> Modified via BusRdX fill;
///             replace -> Invalid;
///         }
///         from Modified {
///             read  -> Modified;
///             write -> Modified;
///             replace -> Invalid writeback;
///         }
///         snoop Modified { BusRdX -> Invalid flush; }
///     }
/// "#).expect("valid protocol text");
/// assert_eq!(spec.name(), "TwoState");
/// assert_eq!(spec.state(spec.state_by_name("M").unwrap()).name, "Modified");
/// ```
pub fn parse_protocol(source: &str) -> Result<ProtocolSpec, DslError> {
    let tokens = tokenize(source)?;
    let ast = parse_ast(&tokens)?;
    lower(&ast)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols;
    use crate::{GlobalCtx, ProcEvent};

    const MINIMAL: &str = r#"
        # A two-state write-invalidate protocol.
        protocol Mini {
            state Invalid invalid;
            state Modified copy owned exclusive silent-write;

            from Invalid {
                read  -> Modified via BusRdX fill;
                write -> Modified via BusRdX fill;
                replace -> Invalid;
            }
            from Modified {
                read  -> Modified;
                write -> Modified;
                replace -> Invalid writeback;
            }
            snoop Modified {
                BusRdX -> Invalid flush;
            }
        }
    "#;

    #[test]
    fn minimal_protocol_parses_and_validates() {
        let spec = parse_protocol(MINIMAL).expect("parse");
        assert_eq!(spec.name(), "Mini");
        assert_eq!(spec.num_states(), 2);
        let m = spec.state_by_name("Modified").unwrap();
        assert!(spec.attrs(m).owned && spec.attrs(m).exclusive);
        // And it verifies — use the spec through the normal API.
        let o = spec.outcome(spec.invalid(), ProcEvent::Write, GlobalCtx::ALONE);
        assert_eq!(o.next, m);
    }

    /// Asserts `reparsed` is semantically identical to `original`:
    /// same states, attributes, outcomes (completions included),
    /// snoops and transient structure.
    fn assert_specs_equal(original: &crate::ProtocolSpec, reparsed: &crate::ProtocolSpec) {
        assert_eq!(original.num_states(), reparsed.num_states());
        for s in original.state_ids() {
            assert_eq!(
                original.state(s).name,
                reparsed.state(s).name,
                "{}",
                original.name()
            );
            assert_eq!(original.attrs(s), reparsed.attrs(s));
            assert_eq!(
                original.is_transient(s),
                reparsed.is_transient(s),
                "{}: transient flag of {}",
                original.name(),
                original.state(s).name
            );
            let mut events = ProcEvent::ALL.to_vec();
            if original.is_transient(s) {
                assert_eq!(
                    original.transient_info(s).map(|t| t.pending),
                    reparsed.transient_info(s).map(|t| t.pending),
                    "{}: pending bus of {}",
                    original.name(),
                    original.state(s).name
                );
                events.push(ProcEvent::Complete);
            }
            for e in events {
                for c in GlobalCtx::ALL {
                    assert_eq!(
                        original.outcome(s, e, c),
                        reparsed.outcome(s, e, c),
                        "{}: outcome ({:?}, {e}, {c})",
                        original.name(),
                        original.state(s).name
                    );
                }
            }
            for b in crate::BusOp::ALL {
                assert_eq!(
                    original.snoop(s, b),
                    reparsed.snoop(s, b),
                    "{}: snoop ({:?}, {b})",
                    original.name(),
                    original.state(s).name
                );
            }
        }
    }

    #[test]
    fn roundtrip_through_printer() {
        for original in protocols::all_correct()
            .into_iter()
            .chain(protocols::all_non_atomic())
        {
            let text = to_dsl(&original);
            let reparsed = parse_protocol(&text)
                .unwrap_or_else(|e| panic!("{}: {e}\n{text}", original.name()));
            assert_specs_equal(&original, &reparsed);
        }
    }

    #[test]
    fn roundtrip_through_printer_for_mutants() {
        // Mutants bypass builder validation, so re-lowering may
        // legitimately reject them; but whenever the printed text *is*
        // accepted, it must mean the same spec — otherwise the grammar
        // and the printer have drifted apart.
        let mut reparsed_ok = 0usize;
        for (original, _) in protocols::all_buggy() {
            let text = to_dsl(&original);
            if let Ok(reparsed) = parse_protocol(&text) {
                reparsed_ok += 1;
                assert_specs_equal(&original, &reparsed);
            }
        }
        assert!(reparsed_ok > 0, "no mutant survived the round trip");
    }

    #[test]
    fn roundtrip_through_printer_for_generated_mutants() {
        // The exhaustive single-edit sweep, atomic and split alike:
        // the same accept-means-identical property over every mutant
        // the generator can produce. This is the drift tripwire for
        // grammar growth — any printer construct the parser has
        // stopped (or started) understanding shows up here first.
        let mut reparsed_ok = 0usize;
        let mut rejected = 0usize;
        for base in [
            protocols::msi(),
            protocols::illinois(),
            protocols::split_msi(),
            protocols::split_mesi(),
        ] {
            for m in crate::mutate::single_mutants(&base) {
                let text = to_dsl(&m.spec);
                match parse_protocol(&text) {
                    Ok(reparsed) => {
                        reparsed_ok += 1;
                        assert_specs_equal(&m.spec, &reparsed);
                    }
                    Err(e) => {
                        rejected += 1;
                        assert!(
                            !e.to_string().trim().is_empty(),
                            "{}: empty rejection for {}",
                            base.name(),
                            m.description
                        );
                    }
                }
            }
        }
        // Both outcomes must occur, or the property is vacuous.
        assert!(
            reparsed_ok > 100,
            "only {reparsed_ok} mutants round-tripped"
        );
        assert!(rejected > 0, "no mutant was rejected by re-lowering");
    }

    #[test]
    fn error_positions_are_reported() {
        let bad = "protocol X {\n  state Invalid invalid;\n  state V copy;\n  from V { read -> Nowhere; }\n}";
        let err = parse_protocol(bad).unwrap_err();
        assert_eq!(err.line, 4, "{err}");
        assert!(err.message.contains("Nowhere"), "{err}");
    }

    #[test]
    fn unknown_keyword_is_rejected() {
        let bad = "protocol X { state Invalid invalid; state V copy sticky; }";
        let err = parse_protocol(bad).unwrap_err();
        assert!(err.message.contains("sticky"), "{err}");
    }

    #[test]
    fn missing_rows_are_caught_by_the_builder() {
        let bad = r#"
            protocol Partial {
                state Invalid invalid;
                state V copy;
                from Invalid { read -> V via BusRd fill; }
            }
        "#;
        let err = parse_protocol(bad).unwrap_err();
        assert!(err.message.contains("missing outcome"), "{err}");
    }
}
