//! Lowering from the `.ccv` AST to a validated [`ProtocolSpec`].
//!
//! Name resolution, keyword checking and data-operation inference
//! happen here, with source positions on every error; the final
//! semantic validation (complete tables, null-`F` context
//! independence, data/bus consistency, strong connectivity) is done by
//! [`SpecBuilder::build`], exactly as for protocols written in Rust.

use super::ast::{ProcRule, ProtocolAst};
use super::lexer::Span;
use super::DslError;
use crate::{
    BusOp, Characteristic, DataOp, GlobalCtx, Outcome, ProtocolSpec, SnoopOutcome, SpecBuilder,
    StateAttrs, StateId,
};
use std::collections::HashMap;

fn bus_of(name: &str, span: Span) -> Result<BusOp, DslError> {
    match name {
        "BusRd" => Ok(BusOp::Read),
        "BusRdX" => Ok(BusOp::ReadX),
        "BusUpgr" => Ok(BusOp::Upgrade),
        "BusUpd" => Ok(BusOp::Update),
        "BusWB" => Ok(BusOp::WriteBack),
        other => Err(DslError::new(
            span,
            format!(
                "unknown bus mnemonic '{other}' (expected BusRd, BusRdX, BusUpgr, BusUpd or BusWB)"
            ),
        )),
    }
}

fn attrs_of(decl: &super::ast::StateDecl) -> Result<(StateAttrs, bool), DslError> {
    let mut invalid = false;
    let mut transient = false;
    let mut attrs = StateAttrs::default();
    for (a, span) in &decl.attrs {
        match a.as_str() {
            "invalid" => invalid = true,
            "transient" => transient = true,
            "copy" => attrs.holds_copy = true,
            "owned" => attrs.owned = true,
            "exclusive" => attrs.exclusive = true,
            "silent-write" => attrs.writable_silently = true,
            other => {
                return Err(DslError::new(
                    *span,
                    format!("unknown state attribute '{other}'"),
                ))
            }
        }
    }
    if invalid {
        if attrs != StateAttrs::default() || transient {
            return Err(DslError::new(
                decl.span,
                "'invalid' cannot be combined with other attributes",
            ));
        }
        return Ok((StateAttrs::INVALID, false));
    }
    // A transient state may be copy-less (a miss in flight holds no
    // data yet); stable valid states always hold a copy.
    if !attrs.holds_copy && !transient {
        return Err(DslError::new(
            decl.span,
            format!("state '{}' needs 'copy' (or 'invalid')", decl.name),
        ));
    }
    Ok((attrs, transient))
}

struct ModifierSet {
    fill: bool,
    through: bool,
    broadcast: bool,
    writeback: bool,
    phase: bool,
}

fn proc_modifiers(rule: &ProcRule) -> Result<ModifierSet, DslError> {
    let mut m = ModifierSet {
        fill: false,
        through: false,
        broadcast: false,
        writeback: false,
        phase: false,
    };
    for (word, span) in &rule.modifiers {
        match word.as_str() {
            "fill" => m.fill = true,
            "through" => m.through = true,
            "broadcast" => m.broadcast = true,
            "writeback" => m.writeback = true,
            "phase" => m.phase = true,
            other => {
                return Err(DslError::new(
                    *span,
                    format!("unknown transition modifier '{other}'"),
                ))
            }
        }
    }
    Ok(m)
}

fn data_op(rule: &ProcRule, m: &ModifierSet) -> Result<DataOp, DslError> {
    if m.phase {
        // A request phase only records the pending transaction; the
        // data movement happens at completion.
        if m.fill || m.through || m.broadcast || m.writeback {
            return Err(DslError::new(
                rule.span,
                "'phase' carries no data and takes no other modifiers",
            ));
        }
        if rule.event == "replace" {
            return Err(DslError::new(
                rule.span,
                "a replacement cannot start a multi-phase transaction",
            ));
        }
        return Ok(DataOp::None);
    }
    match rule.event.as_str() {
        "read" => {
            if m.through || m.broadcast || m.writeback {
                return Err(DslError::new(
                    rule.span,
                    "'through'/'broadcast'/'writeback' are not read modifiers",
                ));
            }
            Ok(DataOp::Read { fill: m.fill })
        }
        "write" => {
            if m.writeback {
                return Err(DslError::new(
                    rule.span,
                    "'writeback' is a replace modifier, not a write modifier",
                ));
            }
            Ok(DataOp::Write {
                fill: m.fill,
                through: m.through,
                broadcast: m.broadcast,
            })
        }
        "replace" => {
            if m.fill || m.through || m.broadcast {
                return Err(DslError::new(
                    rule.span,
                    "replacements only accept the 'writeback' modifier",
                ));
            }
            Ok(DataOp::Evict {
                writeback: m.writeback,
            })
        }
        _ => unreachable!("parser validated the event"),
    }
}

/// Lowers a parsed protocol to a validated spec.
pub fn lower(ast: &ProtocolAst) -> Result<ProtocolSpec, DslError> {
    let top = Span { line: 1, col: 1 };

    // Characteristic.
    let characteristic = match &ast.characteristic {
        None => Characteristic::Null,
        Some((v, span)) => match v.as_str() {
            "null" => Characteristic::Null,
            "sharing" => Characteristic::SharingDetection,
            other => {
                return Err(DslError::new(
                    *span,
                    format!("unknown characteristic '{other}' (expected 'null' or 'sharing')"),
                ))
            }
        },
    };

    let mut builder = SpecBuilder::new(ast.name.clone()).characteristic(characteristic);

    // Pending transactions, keyed by transient state name. The bus of
    // each `await` block is needed when the state is declared.
    let mut pending_of: HashMap<&str, BusOp> = HashMap::new();
    for block in &ast.awaits {
        let bus = bus_of(&block.bus, block.bus_span)?;
        if pending_of.insert(block.state.as_str(), bus).is_some() {
            return Err(DslError::new(
                block.span,
                format!("duplicate 'await' block for state '{}'", block.state),
            ));
        }
    }

    // States, in declaration order.
    if ast.states.is_empty() {
        return Err(DslError::new(top, "a protocol needs at least one state"));
    }
    let mut ids: HashMap<&str, StateId> = HashMap::new();
    let mut transient_names: std::collections::HashSet<&str> = std::collections::HashSet::new();
    for decl in &ast.states {
        let (attrs, transient) = attrs_of(decl)?;
        if ids.contains_key(decl.name.as_str()) {
            return Err(DslError::new(
                decl.span,
                format!("duplicate state '{}'", decl.name),
            ));
        }
        let short = decl.short.clone().unwrap_or_else(|| decl.name.clone());
        let id = if transient {
            let pending = *pending_of.get(decl.name.as_str()).ok_or_else(|| {
                DslError::new(
                    decl.span,
                    format!(
                        "transient state '{}' has no 'await' block defining its pending \
                         transaction and completion",
                        decl.name
                    ),
                )
            })?;
            transient_names.insert(decl.name.as_str());
            builder.transient(decl.name.clone(), short, attrs, pending)
        } else {
            builder.state(decl.name.clone(), short, attrs)
        };
        ids.insert(decl.name.as_str(), id);
    }
    let resolve = |name: &str, span: Span| -> Result<StateId, DslError> {
        ids.get(name)
            .copied()
            .ok_or_else(|| DslError::new(span, format!("unknown state '{name}'")))
    };

    // Processor rules.
    for block in &ast.froms {
        let from = resolve(&block.state, block.span)?;
        for rule in &block.rules {
            let target = resolve(&rule.target, rule.target_span)?;
            let m = proc_modifiers(rule)?;
            let data = data_op(rule, &m)?;
            if m.phase {
                if let Some((_, span)) = &rule.via {
                    return Err(DslError::new(
                        *span,
                        "a 'phase' request issues no atomic bus transaction ('via' is not allowed)",
                    ));
                }
            }
            let mut bus = match &rule.via {
                Some((name, span)) => Some(bus_of(name, *span)?),
                None => None,
            };
            // `replace … writeback` implies the write-back transaction.
            if bus.is_none() && matches!(data, DataOp::Evict { writeback: true }) {
                bus = Some(BusOp::WriteBack);
            }
            let outcome = Outcome {
                next: target,
                bus,
                data,
            };
            let event = match rule.event.as_str() {
                "read" => crate::ProcEvent::Read,
                "write" => crate::ProcEvent::Write,
                _ => crate::ProcEvent::Replace,
            };
            match &rule.when {
                None => {
                    builder.on(from, event, outcome);
                }
                Some((ctx, span)) => match ctx.as_str() {
                    "alone" => {
                        builder.on_ctx(from, event, GlobalCtx::ALONE, outcome);
                    }
                    "shared" => {
                        builder.on_ctx(from, event, GlobalCtx::SHARED_CLEAN, outcome);
                        builder.on_ctx(from, event, GlobalCtx::OWNED_ELSEWHERE, outcome);
                    }
                    "owned" => {
                        builder.on_ctx(from, event, GlobalCtx::OWNED_ELSEWHERE, outcome);
                    }
                    other => {
                        return Err(DslError::new(
                            *span,
                            format!(
                                "unknown context '{other}' (expected 'alone', 'shared' or 'owned')"
                            ),
                        ))
                    }
                },
            }
        }
    }

    // Snoop rules.
    for block in &ast.snoops {
        let state = resolve(&block.state, block.span)?;
        for rule in &block.rules {
            let bus = bus_of(&rule.bus, rule.span)?;
            let target = resolve(&rule.target, rule.target_span)?;
            let mut outcome = SnoopOutcome::to(target);
            for (word, span) in &rule.modifiers {
                match word.as_str() {
                    "supply" => outcome.supplies_data = true,
                    "flush" => outcome.flushes_to_memory = true,
                    "update" => outcome.receives_update = true,
                    other => {
                        return Err(DslError::new(
                            *span,
                            format!("unknown snoop modifier '{other}'"),
                        ))
                    }
                }
            }
            builder.snoop(state, bus, outcome);
        }
    }

    // Completion rules.
    for block in &ast.awaits {
        let state = resolve(&block.state, block.span)?;
        if !transient_names.contains(block.state.as_str()) {
            return Err(DslError::new(
                block.span,
                format!(
                    "'await' block for '{}', which is not declared 'transient'",
                    block.state
                ),
            ));
        }
        let pending = pending_of[block.state.as_str()];
        for rule in &block.rules {
            let target = resolve(&rule.target, rule.target_span)?;
            let m = proc_modifiers(rule)?;
            if m.phase {
                return Err(DslError::new(
                    rule.span,
                    "'phase' marks a request rule, not a completion",
                ));
            }
            let data = data_op(rule, &m)?;
            // The completion fires the pending transaction; a `via`
            // clause, if written, must restate it.
            if let Some((name, span)) = &rule.via {
                if bus_of(name, *span)? != pending {
                    return Err(DslError::new(
                        *span,
                        format!(
                            "completion bus '{name}' does not match the pending transaction of \
                             the 'await' header"
                        ),
                    ));
                }
            }
            let outcome = Outcome {
                next: target,
                bus: Some(pending),
                data,
            };
            match &rule.when {
                None => {
                    builder.on_complete(state, outcome);
                }
                Some((ctx, span)) => match ctx.as_str() {
                    "alone" => {
                        builder.on_complete_ctx(state, GlobalCtx::ALONE, outcome);
                    }
                    "shared" => {
                        builder.on_complete_ctx(state, GlobalCtx::SHARED_CLEAN, outcome);
                        builder.on_complete_ctx(state, GlobalCtx::OWNED_ELSEWHERE, outcome);
                    }
                    "owned" => {
                        builder.on_complete_ctx(state, GlobalCtx::OWNED_ELSEWHERE, outcome);
                    }
                    other => {
                        return Err(DslError::new(
                            *span,
                            format!(
                                "unknown context '{other}' (expected 'alone', 'shared' or 'owned')"
                            ),
                        ))
                    }
                },
            }
        }
    }

    builder
        .build()
        .map_err(|e| DslError::new(top, format!("invalid protocol: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::parse_protocol;

    #[test]
    fn sharing_characteristic_is_recognised() {
        let spec = parse_protocol(
            "protocol S { characteristic sharing; \
             state Invalid invalid; state E copy exclusive; state Sh copy; \
             from Invalid { read when alone -> E via BusRd fill; \
                            read when shared -> Sh via BusRd fill; \
                            write -> E via BusRdX fill; replace -> Invalid; } \
             from E { read -> E; write -> E via BusUpgr; replace -> Invalid; } \
             from Sh { read -> Sh; write -> E via BusUpgr; replace -> Invalid; } \
             snoop E { BusRd -> Sh supply; BusRdX -> Invalid; BusUpgr -> Invalid; } \
             snoop Sh { BusRd -> Sh supply; BusRdX -> Invalid; BusUpgr -> Invalid; } }",
        )
        .unwrap();
        assert!(spec.uses_sharing_detection());
    }

    #[test]
    fn writeback_implies_buswb() {
        let spec = parse_protocol(
            "protocol W { state Invalid invalid; state M copy owned exclusive silent-write; \
             from Invalid { read -> M via BusRdX fill; write -> M via BusRdX fill; replace -> Invalid; } \
             from M { read -> M; write -> M; replace -> Invalid writeback; } \
             snoop M { BusRdX -> Invalid flush; } }",
        )
        .unwrap();
        let m = spec.state_by_name("M").unwrap();
        let o = spec.outcome(m, crate::ProcEvent::Replace, GlobalCtx::ALONE);
        assert_eq!(o.bus, Some(BusOp::WriteBack));
        assert_eq!(o.data, DataOp::Evict { writeback: true });
    }

    #[test]
    fn bad_modifier_placement_is_rejected() {
        let err = parse_protocol(
            "protocol B { state Invalid invalid; state V copy; \
             from Invalid { read -> V via BusRd fill through; } }",
        )
        .unwrap_err();
        assert!(err.message.contains("read modifiers"), "{err}");
    }

    #[test]
    fn valid_state_without_copy_is_rejected() {
        let err =
            parse_protocol("protocol B { state Invalid invalid; state V owned; }").unwrap_err();
        assert!(err.message.contains("'copy'"), "{err}");
    }

    #[test]
    fn invalid_with_other_attrs_is_rejected() {
        let err = parse_protocol("protocol B { state Invalid invalid copy; }").unwrap_err();
        assert!(err.message.contains("combined"), "{err}");
    }

    #[test]
    fn duplicate_state_is_rejected() {
        let err =
            parse_protocol("protocol B { state Invalid invalid; state V copy; state V copy; }")
                .unwrap_err();
        assert!(err.message.contains("duplicate state"), "{err}");
    }

    #[test]
    fn unknown_context_is_rejected() {
        let err = parse_protocol(
            "protocol B { state Invalid invalid; state V copy; \
             from Invalid { read when lonely -> V via BusRd fill; } }",
        )
        .unwrap_err();
        assert!(err.message.contains("lonely"), "{err}");
    }

    #[test]
    fn later_rules_override_earlier_ones() {
        let spec = parse_protocol(
            "protocol O { characteristic sharing; \
             state Invalid invalid; state E copy exclusive; state Sh copy; \
             from Invalid { read -> Sh via BusRd fill; \
                            read when alone -> E via BusRd fill; \
                            write -> E via BusRdX fill; replace -> Invalid; } \
             from E { read -> E; write -> E via BusUpgr; replace -> Invalid; } \
             from Sh { read -> Sh; write -> E via BusUpgr; replace -> Invalid; } \
             snoop E { BusRd -> Sh supply; BusRdX -> Invalid; BusUpgr -> Invalid; } \
             snoop Sh { BusRd -> Sh supply; BusRdX -> Invalid; BusUpgr -> Invalid; } }",
        )
        .unwrap();
        let e = spec.state_by_name("E").unwrap();
        let sh = spec.state_by_name("Sh").unwrap();
        let inv = spec.invalid();
        assert_eq!(
            spec.outcome(inv, crate::ProcEvent::Read, GlobalCtx::ALONE)
                .next,
            e
        );
        assert_eq!(
            spec.outcome(inv, crate::ProcEvent::Read, GlobalCtx::SHARED_CLEAN)
                .next,
            sh
        );
    }
}
