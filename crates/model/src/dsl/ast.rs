//! Abstract syntax tree for the `.ccv` protocol language.
//!
//! The AST is deliberately stringly-typed: name resolution, keyword
//! validation and semantic checks all happen in [`super::lower`], where
//! positions are still available for precise error reporting.

use super::lexer::Span;

/// A parsed protocol file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProtocolAst {
    /// Protocol name.
    pub name: String,
    /// `characteristic …;` item, if present (`null` is the default).
    pub characteristic: Option<(String, Span)>,
    /// `state …;` declarations, in order (the first must be invalid).
    pub states: Vec<StateDecl>,
    /// `from … { … }` blocks.
    pub froms: Vec<FromBlock>,
    /// `snoop … { … }` blocks.
    pub snoops: Vec<SnoopBlock>,
    /// `await … via … { … }` blocks (split-transaction completions).
    pub awaits: Vec<AwaitBlock>,
}

/// `state NAME ('as' SHORT)? attr… ;`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StateDecl {
    /// State name.
    pub name: String,
    /// Short display name (defaults to `name`).
    pub short: Option<String>,
    /// Attribute keywords (`invalid`, `copy`, `owned`, `exclusive`,
    /// `silent-write`).
    pub attrs: Vec<(String, Span)>,
    /// Position of the declaration.
    pub span: Span,
}

/// `from NAME { rule… }`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FromBlock {
    /// Originating state.
    pub state: String,
    /// Rules, in source order (later rules override earlier ones).
    pub rules: Vec<ProcRule>,
    /// Position of the block header.
    pub span: Span,
}

/// `event (when ctx)? -> NAME (via BUS)? mod… ;`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProcRule {
    /// `read`, `write` or `replace`.
    pub event: String,
    /// `alone`, `shared` or `owned`, if given.
    pub when: Option<(String, Span)>,
    /// Target state name.
    pub target: String,
    /// Bus mnemonic after `via`, if given.
    pub via: Option<(String, Span)>,
    /// Modifier keywords (`fill`, `through`, `broadcast`, `writeback`).
    pub modifiers: Vec<(String, Span)>,
    /// Position of the rule.
    pub span: Span,
    /// Position of the target name (for unknown-state errors).
    pub target_span: Span,
}

/// `await NAME via BUS { rule… }`
///
/// Declares the completion phase of a transient state: `NAME` is the
/// transient state, `BUS` the pending transaction it is waiting on, and
/// each rule describes the outcome once the bus is finally granted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AwaitBlock {
    /// Transient state whose completion this block defines.
    pub state: String,
    /// Bus mnemonic of the pending transaction after `via`.
    pub bus: String,
    /// Position of the bus mnemonic (for unknown-bus errors).
    pub bus_span: Span,
    /// Completion rules, in source order.
    pub rules: Vec<ProcRule>,
    /// Position of the block header.
    pub span: Span,
}

/// `snoop NAME { rule… }`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnoopBlock {
    /// Snooping state.
    pub state: String,
    /// Rules, in source order.
    pub rules: Vec<SnoopRule>,
    /// Position of the block header.
    pub span: Span,
}

/// `BUS -> NAME smod… ;`
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnoopRule {
    /// Bus mnemonic.
    pub bus: String,
    /// Target state name.
    pub target: String,
    /// Modifier keywords (`supply`, `flush`, `update`).
    pub modifiers: Vec<(String, Span)>,
    /// Position of the rule.
    pub span: Span,
    /// Position of the target name.
    pub target_span: Span,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ast_nodes_are_plain_data() {
        // Construction sanity — the parser tests exercise the real
        // shapes; this pins the public field layout.
        let s = Span { line: 1, col: 1 };
        let ast = ProtocolAst {
            name: "P".into(),
            characteristic: Some(("sharing".into(), s)),
            states: vec![StateDecl {
                name: "Invalid".into(),
                short: None,
                attrs: vec![("invalid".into(), s)],
                span: s,
            }],
            froms: vec![],
            snoops: vec![],
            awaits: vec![],
        };
        assert_eq!(ast.states.len(), 1);
        assert_eq!(ast.characteristic.as_ref().unwrap().0, "sharing");
    }
}
