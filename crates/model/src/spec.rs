//! Protocol specifications: the FSM `M = (Q, Σ, F, δ)` as data.
//!
//! A [`ProtocolSpec`] is a complete, validated, table-driven description
//! of a snooping cache coherence protocol:
//!
//! * the state symbols `Q` with their semantic attributes,
//! * the characteristic function `F` (null or sharing-detection),
//! * the transition function `δ : F × Q × Σ → Q` in the form of a dense
//!   *processor-outcome* table — for each (state, event, global context)
//!   the originator's next state, the bus transaction it emits, and the
//!   declarative data movement ([`DataOp`]),
//! * the *snoop* table — for each (state, bus op) the coincident
//!   reaction of every other cache ([`SnoopOutcome`]).
//!
//! One spec object drives all three engines in this repository: the
//! symbolic verifier (`ccv-core`), the explicit-state enumerator
//! (`ccv-enum`) and the trace simulator (`ccv-sim`). The object that is
//! proved correct is the object that is executed.
//!
//! Specs are constructed through [`SpecBuilder`], which statically
//! validates well-formedness: complete tables, null-`F` protocols truly
//! context-independent, data movement consistent with bus usage, and the
//! local FSM strongly connected (Definition 1 requires it).

use crate::bus::{BusOp, SnoopOutcome};
use crate::connectivity::strongly_connected;
use crate::context::{Characteristic, GlobalCtx};
use crate::data::{CData, DataOp};
use crate::event::ProcEvent;
use crate::state::{StateAttrs, StateId, StateInfo};
use core::fmt;

/// The originator-side result of applying a processor event to a cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Outcome {
    /// The originating cache's next state.
    pub next: StateId,
    /// The bus transaction broadcast to all other caches (and memory),
    /// or `None` for a silent (purely local) transition.
    pub bus: Option<BusOp>,
    /// Declarative description of the data movement.
    pub data: DataOp,
}

impl Outcome {
    /// A silent transition to `next` with no data movement.
    pub const fn silent(next: StateId) -> Outcome {
        Outcome {
            next,
            bus: None,
            data: DataOp::None,
        }
    }

    /// A transition to `next` emitting `bus`.
    pub const fn with_bus(next: StateId, bus: BusOp) -> Outcome {
        Outcome {
            next,
            bus: Some(bus),
            data: DataOp::None,
        }
    }

    /// Sets the data operation (chainable).
    pub const fn data(mut self, data: DataOp) -> Outcome {
        self.data = data;
        self
    }

    /// A read hit: stay (or move) silently, observing the local value.
    pub const fn read_hit(next: StateId) -> Outcome {
        Outcome {
            next,
            bus: None,
            data: DataOp::Read { fill: false },
        }
    }

    /// A read miss filling from the bus via `BusRd`.
    pub const fn read_miss(next: StateId) -> Outcome {
        Outcome {
            next,
            bus: Some(BusOp::Read),
            data: DataOp::Read { fill: true },
        }
    }

    /// A silent write hit (the copy is already writable).
    pub const fn write_hit_silent(next: StateId) -> Outcome {
        Outcome {
            next,
            bus: None,
            data: DataOp::Write {
                fill: false,
                through: false,
                broadcast: false,
            },
        }
    }

    /// A write hit that invalidates remote copies via `BusUpgr`.
    pub const fn write_hit_invalidate(next: StateId) -> Outcome {
        Outcome {
            next,
            bus: Some(BusOp::Upgrade),
            data: DataOp::Write {
                fill: false,
                through: false,
                broadcast: false,
            },
        }
    }

    /// A write miss: fill with ownership via `BusRdX`, then write
    /// locally (remote copies invalidate in their snoop reaction).
    pub const fn write_miss_invalidate(next: StateId) -> Outcome {
        Outcome {
            next,
            bus: Some(BusOp::ReadX),
            data: DataOp::Write {
                fill: true,
                through: false,
                broadcast: false,
            },
        }
    }

    /// A write hit broadcast as an update to remote copies.
    /// `through` additionally writes the new value to memory (Firefly).
    pub const fn write_hit_update(next: StateId, through: bool) -> Outcome {
        Outcome {
            next,
            bus: Some(BusOp::Update),
            data: DataOp::Write {
                fill: false,
                through,
                broadcast: true,
            },
        }
    }

    /// A write-through write hit with remote invalidation (Write-Once's
    /// first write: memory is updated and other copies are invalidated).
    pub const fn write_hit_through_invalidate(next: StateId) -> Outcome {
        Outcome {
            next,
            bus: Some(BusOp::Upgrade),
            data: DataOp::Write {
                fill: false,
                through: true,
                broadcast: false,
            },
        }
    }

    /// A clean eviction: the block is dropped silently.
    pub const fn evict_clean(invalid: StateId) -> Outcome {
        Outcome {
            next: invalid,
            bus: None,
            data: DataOp::Evict { writeback: false },
        }
    }

    /// A dirty eviction: the block is written back via `BusWB`.
    pub const fn evict_writeback(invalid: StateId) -> Outcome {
        Outcome {
            next: invalid,
            bus: Some(BusOp::WriteBack),
            data: DataOp::Evict { writeback: true },
        }
    }
}

/// The split-transaction description of a **transient** state.
///
/// The atomic model of the paper (§2) fires a processor event, its bus
/// transaction and every snoop reaction in one indivisible step. A
/// split-transaction protocol breaks that step in two: the *request
/// phase* moves the originator silently into a transient state (the
/// processor stalls, no bus traffic, no data moves), and the
/// *completion phase* — a separate global stimulus
/// ([`ProcEvent::Complete`]) that other caches' events may interleave
/// with — finally performs the pending bus transaction.
///
/// The completion row is an ordinary [`Outcome`] per global context
/// whose `bus` is always `Some(pending)`, so every piece of data-path
/// machinery (snoop reactions, fills, flushes, staleness tracking)
/// applies to completions verbatim. The global context is evaluated at
/// **completion time**, which is what makes e.g. a split MESI's
/// exclusive-vs-shared fill decision sound.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TransientInfo {
    /// The bus transaction this state is waiting to perform.
    pub pending: BusOp,
    /// Completion outcome per global context (indexed by
    /// [`GlobalCtx::index`]); `bus == Some(pending)` in every entry.
    pub completion: [Outcome; GlobalCtx::COUNT],
}

/// Errors detected while building or validating a [`ProtocolSpec`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// Fewer than two states, or state 0 claims to hold a copy.
    BadStateSet(String),
    /// Two states share a name.
    DuplicateStateName(String),
    /// A (state, event, context) entry was never defined.
    MissingOutcome {
        /// State whose row is incomplete.
        state: String,
        /// Event with no outcome.
        event: ProcEvent,
        /// Context with no outcome.
        ctx: GlobalCtx,
    },
    /// A protocol declared with the null characteristic function has an
    /// outcome that differs across global contexts.
    NullCharacteristicCtxDependence {
        /// Offending state.
        state: String,
        /// Offending event.
        event: ProcEvent,
    },
    /// The data operation is inconsistent with the transition shape
    /// (e.g. a fill without a data-carrying bus transaction).
    InconsistentData {
        /// Offending state.
        state: String,
        /// Offending event.
        event: ProcEvent,
        /// Explanation.
        why: String,
    },
    /// The local FSM is not strongly connected (violates Definition 1).
    NotStronglyConnected,
    /// A transient-state declaration is inconsistent (missing or
    /// malformed completion row, illegal attributes, or a request rule
    /// that does not follow the two-phase shape).
    BadTransient {
        /// Offending state.
        state: String,
        /// Explanation.
        why: String,
    },
}

impl fmt::Display for SpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpecError::BadStateSet(why) => write!(f, "bad state set: {why}"),
            SpecError::DuplicateStateName(n) => write!(f, "duplicate state name: {n}"),
            SpecError::MissingOutcome { state, event, ctx } => {
                write!(f, "missing outcome for ({state}, {event}, {ctx})")
            }
            SpecError::NullCharacteristicCtxDependence { state, event } => write!(
                f,
                "null-F protocol has context-dependent outcome at ({state}, {event})"
            ),
            SpecError::InconsistentData { state, event, why } => {
                write!(f, "inconsistent data movement at ({state}, {event}): {why}")
            }
            SpecError::NotStronglyConnected => {
                write!(f, "local FSM is not strongly connected (Definition 1)")
            }
            SpecError::BadTransient { state, why } => {
                write!(f, "bad transient state {state}: {why}")
            }
        }
    }
}

impl std::error::Error for SpecError {}

/// A complete, validated snooping coherence protocol.
#[derive(Clone, Debug)]
pub struct ProtocolSpec {
    name: String,
    states: Vec<StateInfo>,
    characteristic: Characteristic,
    proc_table: Vec<[[Outcome; GlobalCtx::COUNT]; ProcEvent::COUNT]>,
    snoop_table: Vec<[SnoopOutcome; BusOp::COUNT]>,
    emitted_bus_ops: Vec<BusOp>,
    /// Split-transaction side table: `transients[s]` is `Some` exactly
    /// when state `s` is transient. Empty-equivalent (all `None`) for
    /// atomic protocols.
    transients: Vec<Option<TransientInfo>>,
    /// Bit `s` set iff state `s` is transient — the hot-path form of
    /// `transients[s].is_some()` (state ids fit in 4 bits, so 16 bits
    /// suffice).
    transient_mask: u16,
}

impl ProtocolSpec {
    /// Protocol name, e.g. `"Illinois"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of state symbols `|Q|`.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// All state descriptions, indexed by [`StateId`].
    pub fn states(&self) -> &[StateInfo] {
        &self.states
    }

    /// Description of one state.
    pub fn state(&self, id: StateId) -> &StateInfo {
        &self.states[id.index()]
    }

    /// Attributes of one state.
    #[inline]
    pub fn attrs(&self, id: StateId) -> StateAttrs {
        self.states[id.index()].attrs
    }

    /// Looks a state up by (long or short) name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.states
            .iter()
            .position(|s| s.name == name || s.short == name)
            .map(|i| StateId(i as u8))
    }

    /// The conventional invalid state (`q0`).
    pub fn invalid(&self) -> StateId {
        StateId::INVALID
    }

    /// The characteristic function `F` of Definition 1.
    pub fn characteristic(&self) -> Characteristic {
        self.characteristic
    }

    /// The originator-side outcome `δ(F, q, σ)`. For
    /// [`ProcEvent::Complete`] this is the completion row of the
    /// transient side table (panics if `state` is not transient —
    /// engines only generate `Complete` for transient states).
    #[inline]
    pub fn outcome(&self, state: StateId, event: ProcEvent, ctx: GlobalCtx) -> Outcome {
        match event {
            ProcEvent::Complete => {
                self.transients[state.index()]
                    .as_ref()
                    .expect("Complete stimulus on a non-transient state")
                    .completion[ctx.index()]
            }
            _ => self.proc_table[state.index()][event.index()][ctx.index()],
        }
    }

    /// True iff `state` is transient (awaiting its pending bus
    /// transaction).
    #[inline]
    pub fn is_transient(&self, state: StateId) -> bool {
        // Transient states are validated to sit in the first 16 ids
        // (the packed-encoding range); anything beyond is atomic.
        state.index() < 16 && self.transient_mask & (1 << state.index()) != 0
    }

    /// True iff the protocol has any transient state — i.e. it is a
    /// non-atomic (split-transaction) protocol.
    #[inline]
    pub fn has_transients(&self) -> bool {
        self.transient_mask != 0
    }

    /// The split-transaction description of `state`, if transient.
    #[inline]
    pub fn transient_info(&self, state: StateId) -> Option<&TransientInfo> {
        self.transients[state.index()].as_ref()
    }

    /// Iterator over the transient states.
    pub fn transient_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.state_ids().filter(|&s| self.is_transient(s))
    }

    /// The coincident snoop reaction of a cache in `state` to `bus`.
    #[inline]
    pub fn snoop(&self, state: StateId, bus: BusOp) -> SnoopOutcome {
        self.snoop_table[state.index()][bus.index()]
    }

    /// Bus operations actually emitted by some processor outcome.
    pub fn emitted_bus_ops(&self) -> &[BusOp] {
        &self.emitted_bus_ops
    }

    /// Iterator over all state ids.
    pub fn state_ids(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.states.len() as u8).map(StateId)
    }

    /// Iterator over states that hold a copy (the paper's "valid"
    /// states, counted by the sharing-detection function).
    pub fn valid_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.state_ids().filter(|&s| self.attrs(s).holds_copy)
    }

    /// Iterator over owned states (memory may be stale w.r.t. them).
    pub fn owned_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.state_ids().filter(|&s| self.attrs(s).owned)
    }

    /// True iff the protocol uses the sharing-detection characteristic
    /// function.
    pub fn uses_sharing_detection(&self) -> bool {
        self.characteristic == Characteristic::SharingDetection
    }

    /// Number of protocol rules: one per `(state, processor event)`
    /// stimulus, plus — for non-atomic protocols only — one completion
    /// rule per state. Dense upper bound for rule-indexed attribution
    /// arrays (see [`rule_id`](ProtocolSpec::rule_id)). Atomic
    /// protocols keep the historical `|Q| * |Σ|` count.
    pub fn num_rules(&self) -> usize {
        let base = self.states.len() * ProcEvent::COUNT;
        if self.has_transients() {
            base + self.states.len()
        } else {
            base
        }
    }

    /// Dense id of the rule fired when a cache in `state` receives
    /// `event`: `state.index() * 3 + event.index()` for the processor
    /// alphabet, and `|Q| * 3 + state.index()` for completions, in
    /// `0..num_rules()`.
    #[inline]
    pub fn rule_id(&self, state: StateId, event: ProcEvent) -> usize {
        if event == ProcEvent::Complete {
            self.states.len() * ProcEvent::COUNT + state.index()
        } else {
            state.index() * ProcEvent::COUNT + event.index()
        }
    }

    /// Number of `(state, cdata)` class slots: one per protocol state
    /// and data-freshness value. Dense upper bound for slot-indexed
    /// structures (see [`class_slot`](ProtocolSpec::class_slot)), such
    /// as the symbolic engine's containment-index signatures.
    pub fn num_class_slots(&self) -> usize {
        self.states.len() * CData::ALL.len()
    }

    /// Dense id of the class of caches in `state` holding data of
    /// freshness `cdata`: `state.index() * 3 + cdata.index()`, in
    /// `0..num_class_slots()`.
    #[inline]
    pub fn class_slot(&self, state: StateId, cdata: CData) -> usize {
        state.index() * CData::ALL.len() + cdata.index()
    }

    /// Human-readable name of a rule id: `"<state short>:<event>"`,
    /// e.g. `"Inv:R"` for a read on an invalid line or `"IS_D:C"` for
    /// a transient state's completion.
    pub fn rule_name(&self, rule_id: usize) -> String {
        let base = self.states.len() * ProcEvent::COUNT;
        if rule_id >= base {
            let state = &self.states[rule_id - base];
            return format!("{}:{}", state.short, ProcEvent::Complete.label());
        }
        let state = &self.states[rule_id / ProcEvent::COUNT];
        let event = ProcEvent::ALL[rule_id % ProcEvent::COUNT];
        format!("{}:{}", state.short, event.label())
    }

    /// Returns a copy of this spec under a different name.
    ///
    /// Part of the *mutation API* used to seed deliberate protocol bugs
    /// for verifier robustness testing; see [`crate::protocols`]'s buggy
    /// mutants.
    pub fn renamed(mut self, name: impl Into<String>) -> ProtocolSpec {
        self.name = name.into();
        self
    }

    /// Returns a copy of this spec with one snoop reaction replaced.
    ///
    /// **This bypasses builder validation** — it exists precisely to
    /// construct plausible-but-incorrect protocols (forgotten
    /// invalidations, dropped flushes) that the verifier must reject.
    pub fn override_snoop(
        mut self,
        state: StateId,
        bus: BusOp,
        outcome: SnoopOutcome,
    ) -> ProtocolSpec {
        self.snoop_table[state.index()][bus.index()] = outcome;
        self
    }

    /// Returns a copy of this spec with one state's semantic attributes
    /// replaced.
    ///
    /// **This bypasses builder validation** — see [`Self::override_snoop`].
    /// It can even violate the `q0`-is-invalid convention, producing a
    /// protocol whose *initial* global state is already structurally
    /// erroneous; the engine test suites use exactly that to pin down
    /// initial-state violation handling.
    pub fn override_attrs(mut self, state: StateId, attrs: StateAttrs) -> ProtocolSpec {
        self.states[state.index()].attrs = attrs;
        self
    }

    /// Returns a copy of this spec with one processor outcome replaced
    /// for the given context, or for every context when `ctx` is `None`.
    ///
    /// **This bypasses builder validation** — see [`Self::override_snoop`].
    pub fn override_outcome(
        mut self,
        state: StateId,
        event: ProcEvent,
        ctx: Option<GlobalCtx>,
        outcome: Outcome,
    ) -> ProtocolSpec {
        match ctx {
            Some(c) => {
                self.proc_table[state.index()][event.index()][c.index()] = outcome;
            }
            None => {
                for c in GlobalCtx::ALL {
                    self.proc_table[state.index()][event.index()][c.index()] = outcome;
                }
            }
        }
        // Keep the emitted-bus-op summary in sync.
        self.emitted_bus_ops = emitted_ops(&self.proc_table, &self.transients);
        self
    }

    /// Returns a copy of this spec with one transient state's
    /// completion outcome replaced for the given context, or for every
    /// context when `ctx` is `None`.
    ///
    /// **This bypasses builder validation** — see [`Self::override_snoop`].
    /// It seeds split-transaction mutants: a completion that lands in
    /// the wrong state, fires the wrong bus transaction, or moves the
    /// wrong data. Panics if `state` is not transient.
    pub fn override_completion(
        mut self,
        state: StateId,
        ctx: Option<GlobalCtx>,
        outcome: Outcome,
    ) -> ProtocolSpec {
        let info = self.transients[state.index()]
            .as_mut()
            .expect("override_completion on a non-transient state");
        match ctx {
            Some(c) => info.completion[c.index()] = outcome,
            None => {
                for c in GlobalCtx::ALL {
                    info.completion[c.index()] = outcome;
                }
            }
        }
        self.emitted_bus_ops = emitted_ops(&self.proc_table, &self.transients);
        self
    }

    /// Renders the processor transition table as human-readable text
    /// (one row per (state, event, context)).
    pub fn describe(&self) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "protocol {} ({:?} characteristic)",
            self.name, self.characteristic
        );
        for s in self.state_ids() {
            let info = self.state(s);
            let _ = writeln!(
                out,
                "  state {} [{}]{}{}{}{}",
                info.name,
                info.short,
                if info.attrs.holds_copy { " copy" } else { "" },
                if info.attrs.owned { " owned" } else { "" },
                if info.attrs.exclusive { " excl" } else { "" },
                match self.transient_info(s) {
                    Some(t) => format!(" transient(awaiting {})", t.pending),
                    None => String::new(),
                },
            );
            if self.is_transient(s) {
                // Σ rows are stalls; show the completion instead.
                for c in GlobalCtx::ALL {
                    let o = self.outcome(s, ProcEvent::Complete, c);
                    if c != GlobalCtx::ALONE
                        && o == self.outcome(s, ProcEvent::Complete, GlobalCtx::ALONE)
                    {
                        continue;
                    }
                    let bus = o
                        .bus
                        .map(|b| format!(" {b}"))
                        .unwrap_or_else(|| " silent".to_string());
                    let _ = writeln!(
                        out,
                        "    C [{c}] -> {}{bus} {:?}",
                        self.state(o.next).short,
                        o.data
                    );
                }
                continue;
            }
            for e in ProcEvent::ALL {
                for c in GlobalCtx::ALL {
                    let o = self.outcome(s, e, c);
                    if c != GlobalCtx::ALONE && o == self.outcome(s, e, GlobalCtx::ALONE) {
                        continue;
                    }
                    let bus = o
                        .bus
                        .map(|b| format!(" {b}"))
                        .unwrap_or_else(|| " silent".to_string());
                    let _ = writeln!(
                        out,
                        "    {e} [{c}] -> {}{bus} {:?}",
                        self.state(o.next).short,
                        o.data
                    );
                }
            }
        }
        out
    }
}

/// Bus operations emitted by any processor outcome or completion row,
/// sorted by index. Shared by [`SpecBuilder::build`] and the mutation
/// API so overrides keep the summary in sync.
fn emitted_ops(
    proc_table: &[[[Outcome; GlobalCtx::COUNT]; ProcEvent::COUNT]],
    transients: &[Option<TransientInfo>],
) -> Vec<BusOp> {
    let mut emitted: Vec<BusOp> = Vec::new();
    let mut push = |b: Option<BusOp>| {
        if let Some(b) = b {
            if !emitted.contains(&b) {
                emitted.push(b);
            }
        }
    };
    for row in proc_table {
        for e in ProcEvent::ALL {
            for c in GlobalCtx::ALL {
                push(row[e.index()][c.index()].bus);
            }
        }
    }
    for t in transients.iter().flatten() {
        for c in GlobalCtx::ALL {
            push(t.completion[c.index()].bus);
        }
    }
    emitted.sort_by_key(|b| b.index());
    emitted
}

/// Builder for [`ProtocolSpec`] with exhaustive validation.
///
/// ```
/// use ccv_model::{SpecBuilder, StateAttrs, ProcEvent, Outcome, BusOp, SnoopOutcome};
///
/// // The smallest coherent write-back protocol: Invalid / Modified.
/// let mut b = SpecBuilder::new("Two-State");
/// let inv = b.state("Invalid", "I", StateAttrs::INVALID);
/// let m = b.state("Modified", "M", StateAttrs::DIRTY);
/// b.on(inv, ProcEvent::Read, Outcome {
///     next: m,
///     bus: Some(BusOp::ReadX), // read-for-ownership
///     data: ccv_model::DataOp::Read { fill: true },
/// });
/// b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(m));
/// b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));
/// b.on(m, ProcEvent::Read, Outcome::read_hit(m));
/// b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
/// b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));
/// b.snoop(m, BusOp::ReadX, SnoopOutcome::flush(inv));
/// let spec = b.build().expect("well-formed");
/// assert_eq!(spec.num_states(), 2);
/// ```
pub struct SpecBuilder {
    name: String,
    states: Vec<StateInfo>,
    characteristic: Characteristic,
    proc_table: Vec<[[Option<Outcome>; GlobalCtx::COUNT]; ProcEvent::COUNT]>,
    snoop_table: Vec<[SnoopOutcome; BusOp::COUNT]>,
    pending: Vec<Option<BusOp>>,
    completion_table: Vec<[Option<Outcome>; GlobalCtx::COUNT]>,
    allow_disconnected: bool,
    skip_data_checks: bool,
}

impl SpecBuilder {
    /// Starts a new protocol with the given name. State `q0` must be the
    /// invalid state; add it first.
    pub fn new(name: impl Into<String>) -> SpecBuilder {
        SpecBuilder {
            name: name.into(),
            states: Vec::new(),
            characteristic: Characteristic::Null,
            proc_table: Vec::new(),
            snoop_table: Vec::new(),
            pending: Vec::new(),
            completion_table: Vec::new(),
            allow_disconnected: false,
            skip_data_checks: false,
        }
    }

    /// Declares the characteristic function (default: null).
    pub fn characteristic(mut self, c: Characteristic) -> SpecBuilder {
        self.characteristic = c;
        self
    }

    /// Permits a non-strongly-connected FSM (used by deliberately broken
    /// mutants and by property-test generators).
    pub fn allow_disconnected(mut self) -> SpecBuilder {
        self.allow_disconnected = true;
        self
    }

    /// Disables the data/bus consistency lints (used by deliberately
    /// broken mutants that model implementation bugs).
    pub fn skip_data_checks(mut self) -> SpecBuilder {
        self.skip_data_checks = true;
        self
    }

    /// Adds a state and returns its id. The first state added becomes
    /// `q0` and must be the invalid state.
    pub fn state(
        &mut self,
        name: impl Into<String>,
        short: impl Into<String>,
        attrs: StateAttrs,
    ) -> StateId {
        let id = StateId(self.states.len() as u8);
        self.states.push(StateInfo::new(name, short, attrs));
        self.proc_table
            .push([[None; GlobalCtx::COUNT]; ProcEvent::COUNT]);
        // Default snoop: ignore every transaction.
        self.snoop_table
            .push([SnoopOutcome::ignore(id); BusOp::COUNT]);
        self.pending.push(None);
        self.completion_table.push([None; GlobalCtx::COUNT]);
        id
    }

    /// Adds a **transient** state awaiting the bus transaction
    /// `pending` and returns its id. Processor events stall in a
    /// transient state (its `Σ` rows are auto-filled with silent
    /// self-loops); declare the completion with
    /// [`on_complete`](Self::on_complete) /
    /// [`on_complete_ctx`](Self::on_complete_ctx).
    pub fn transient(
        &mut self,
        name: impl Into<String>,
        short: impl Into<String>,
        attrs: StateAttrs,
        pending: BusOp,
    ) -> StateId {
        let id = self.state(name, short, attrs);
        self.pending[id.index()] = Some(pending);
        id
    }

    /// Sets the completion outcome of a transient `state` for **all**
    /// global contexts. The outcome's `bus` must be the state's
    /// pending transaction.
    pub fn on_complete(&mut self, state: StateId, outcome: Outcome) -> &mut Self {
        for c in GlobalCtx::ALL {
            self.completion_table[state.index()][c.index()] = Some(outcome);
        }
        self
    }

    /// Sets the completion outcome of a transient `state` for one
    /// specific context (a split-transaction protocol with sharing
    /// detection evaluates the context at completion time).
    pub fn on_complete_ctx(
        &mut self,
        state: StateId,
        ctx: GlobalCtx,
        outcome: Outcome,
    ) -> &mut Self {
        self.completion_table[state.index()][ctx.index()] = Some(outcome);
        self
    }

    /// Sets the outcome of `(state, event)` for **all** global contexts
    /// (the common case for null-`F` protocols).
    pub fn on(&mut self, state: StateId, event: ProcEvent, outcome: Outcome) -> &mut Self {
        for c in GlobalCtx::ALL {
            self.proc_table[state.index()][event.index()][c.index()] = Some(outcome);
        }
        self
    }

    /// Sets the outcome of `(state, event)` for one specific context.
    pub fn on_ctx(
        &mut self,
        state: StateId,
        event: ProcEvent,
        ctx: GlobalCtx,
        outcome: Outcome,
    ) -> &mut Self {
        self.proc_table[state.index()][event.index()][ctx.index()] = Some(outcome);
        self
    }

    /// Sharing-detection split: `alone` applies when no other cache
    /// holds a copy, `shared` applies otherwise (both the shared-clean
    /// and owned-elsewhere contexts).
    pub fn on_sharing(
        &mut self,
        state: StateId,
        event: ProcEvent,
        alone: Outcome,
        shared: Outcome,
    ) -> &mut Self {
        self.on_ctx(state, event, GlobalCtx::ALONE, alone);
        self.on_ctx(state, event, GlobalCtx::SHARED_CLEAN, shared);
        self.on_ctx(state, event, GlobalCtx::OWNED_ELSEWHERE, shared);
        self
    }

    /// Sets the snoop reaction of `state` to `bus`.
    pub fn snoop(&mut self, state: StateId, bus: BusOp, outcome: SnoopOutcome) -> &mut Self {
        self.snoop_table[state.index()][bus.index()] = outcome;
        self
    }

    /// Validates and finalises the specification.
    pub fn build(self) -> Result<ProtocolSpec, SpecError> {
        // --- State set sanity -------------------------------------------------
        if self.states.len() < 2 {
            return Err(SpecError::BadStateSet(
                "a protocol needs at least an invalid and one valid state".into(),
            ));
        }
        if self.states[0].attrs.holds_copy {
            return Err(SpecError::BadStateSet(
                "state q0 must be the invalid state (holds_copy = false)".into(),
            ));
        }
        for (i, a) in self.states.iter().enumerate() {
            for b in &self.states[i + 1..] {
                if a.name == b.name || a.short == b.short {
                    return Err(SpecError::DuplicateStateName(a.name.clone()));
                }
            }
        }

        // --- Transient sanity -------------------------------------------------
        let is_transient = |s: StateId| self.pending[s.index()].is_some();
        for (si, pending) in self.pending.iter().enumerate() {
            let bad = |why: &str| SpecError::BadTransient {
                state: self.states[si].name.clone(),
                why: why.into(),
            };
            let Some(_) = pending else {
                if self.completion_table[si].iter().any(Option::is_some) {
                    return Err(bad("completion declared for a non-transient state"));
                }
                continue;
            };
            if si == 0 {
                return Err(bad("q0 (the invalid state) cannot be transient"));
            }
            if si >= 16 {
                return Err(bad("transient states must sit in the first 16 state ids"));
            }
            let attrs = self.states[si].attrs;
            if attrs.owned || attrs.exclusive || attrs.writable_silently {
                return Err(bad(
                    "a transient state holds no granted rights (owned / exclusive / \
                     silently-writable are atomic-state attributes)",
                ));
            }
        }

        // --- Table completeness ----------------------------------------------
        // Processor events stall in transient states (the originator is
        // waiting for the bus): those rows are synthesised as silent
        // self-loops, never written by hand and never generated by the
        // engines.
        let mut proc_table = Vec::with_capacity(self.states.len());
        for (si, row) in self.proc_table.iter().enumerate() {
            let mut dense = [[Outcome::silent(StateId(0)); GlobalCtx::COUNT]; ProcEvent::COUNT];
            let stall = is_transient(StateId(si as u8));
            for e in ProcEvent::ALL {
                for c in GlobalCtx::ALL {
                    match row[e.index()][c.index()] {
                        Some(o) => dense[e.index()][c.index()] = o,
                        None if stall => {
                            dense[e.index()][c.index()] = Outcome::silent(StateId(si as u8))
                        }
                        None => {
                            return Err(SpecError::MissingOutcome {
                                state: self.states[si].name.clone(),
                                event: e,
                                ctx: c,
                            })
                        }
                    }
                }
            }
            proc_table.push(dense);
        }

        // --- Completion rows ---------------------------------------------------
        let mut transients: Vec<Option<TransientInfo>> = vec![None; self.states.len()];
        let mut transient_mask: u16 = 0;
        for (si, &pending) in self.pending.iter().enumerate() {
            let Some(pending) = pending else { continue };
            let bad = |why: String| SpecError::BadTransient {
                state: self.states[si].name.clone(),
                why,
            };
            let mut completion = [Outcome::silent(StateId(0)); GlobalCtx::COUNT];
            for c in GlobalCtx::ALL {
                let Some(o) = self.completion_table[si][c.index()] else {
                    return Err(bad(format!("missing completion outcome for context {c}")));
                };
                if o.bus != Some(pending) {
                    return Err(bad(format!(
                        "completion must perform the pending transaction {pending}, got {:?}",
                        o.bus
                    )));
                }
                if is_transient(o.next) {
                    return Err(bad(format!(
                        "completion must land in a stable state, got transient {}",
                        self.states[o.next.index()].name
                    )));
                }
                completion[c.index()] = o;
            }
            transients[si] = Some(TransientInfo {
                pending,
                completion,
            });
            transient_mask |= 1 << si;
        }

        // --- Null characteristic really is context-independent ----------------
        if self.characteristic == Characteristic::Null {
            for (si, row) in proc_table.iter().enumerate() {
                for e in ProcEvent::ALL {
                    let base = row[e.index()][0].next;
                    if row[e.index()].iter().any(|o| o.next != base) {
                        return Err(SpecError::NullCharacteristicCtxDependence {
                            state: self.states[si].name.clone(),
                            event: e,
                        });
                    }
                }
            }
            for (si, t) in transients.iter().enumerate() {
                let Some(t) = t else { continue };
                let base = t.completion[0].next;
                if t.completion.iter().any(|o| o.next != base) {
                    return Err(SpecError::NullCharacteristicCtxDependence {
                        state: self.states[si].name.clone(),
                        event: ProcEvent::Complete,
                    });
                }
            }
        }

        // --- Data/bus consistency ---------------------------------------------
        if !self.skip_data_checks {
            for (si, row) in proc_table.iter().enumerate() {
                let holds = self.states[si].attrs.holds_copy;
                if is_transient(StateId(si as u8)) {
                    // Transient Σ rows are synthesised stalls; the real
                    // transition shape is checked on the completion row.
                    continue;
                }
                for e in ProcEvent::ALL {
                    for c in GlobalCtx::ALL {
                        let o = row[e.index()][c.index()];
                        let fail = |why: &str| SpecError::InconsistentData {
                            state: self.states[si].name.clone(),
                            event: e,
                            why: why.into(),
                        };
                        if is_transient(o.next) {
                            // Request phase of a split transaction: the
                            // originator parks silently; bus traffic and
                            // data movement happen at completion.
                            if e == ProcEvent::Replace {
                                return Err(fail("replacement cannot enter a transient state"));
                            }
                            if o.bus.is_some() {
                                return Err(fail(
                                    "a request into a transient state is silent (the pending \
                                     transaction fires at completion)",
                                ));
                            }
                            if o.data != DataOp::None {
                                return Err(fail(
                                    "a request into a transient state moves no data (the \
                                     processor stalls until completion)",
                                ));
                            }
                            if self.states[o.next.index()].attrs.holds_copy && !holds {
                                return Err(fail(
                                    "a copy-holding transient state can only be entered \
                                     from a state that already holds the copy",
                                ));
                            }
                            continue;
                        }
                        // Write-update protocols (Firefly, Dragon) combine the
                        // fill and the update broadcast of a write miss into a
                        // single atomic transaction, so BusUpd is a legal
                        // data-carrying transaction as well.
                        if o.data.is_fill()
                            && !matches!(o.bus, Some(BusOp::Read | BusOp::ReadX | BusOp::Update))
                        {
                            return Err(fail("fill requires BusRd, BusRdX or BusUpd"));
                        }
                        if o.data.is_fill() && holds {
                            return Err(fail("fill from a state that already holds the copy"));
                        }
                        if let DataOp::Write {
                            fill, broadcast, ..
                        } = o.data
                        {
                            if !fill && !holds {
                                return Err(fail("write hit in a state without a copy"));
                            }
                            if broadcast && o.bus != Some(BusOp::Update) {
                                return Err(fail("broadcast write requires BusUpd"));
                            }
                        }
                        if matches!(o.data, DataOp::Evict { writeback: true })
                            && o.bus != Some(BusOp::WriteBack)
                        {
                            return Err(fail("writeback eviction requires BusWB"));
                        }
                        if e == ProcEvent::Replace && self.states[o.next.index()].attrs.holds_copy {
                            return Err(fail("replacement must end in a copy-less state"));
                        }
                        if e == ProcEvent::Read && !matches!(o.data, DataOp::Read { .. }) {
                            return Err(fail("read event must carry DataOp::Read"));
                        }
                        if e == ProcEvent::Write && !matches!(o.data, DataOp::Write { .. }) {
                            return Err(fail("write event must carry DataOp::Write"));
                        }
                        if e == ProcEvent::Replace && !matches!(o.data, DataOp::Evict { .. }) {
                            return Err(fail("replace event must carry DataOp::Evict"));
                        }
                    }
                }
            }

            // Completion rows obey the same data/bus lints as atomic
            // transitions, with the transient state as the origin.
            for (si, t) in transients.iter().enumerate() {
                let Some(t) = t else { continue };
                let holds = self.states[si].attrs.holds_copy;
                for c in GlobalCtx::ALL {
                    let o = t.completion[c.index()];
                    let fail = |why: &str| SpecError::InconsistentData {
                        state: self.states[si].name.clone(),
                        event: ProcEvent::Complete,
                        why: why.into(),
                    };
                    if o.data.is_fill()
                        && !matches!(o.bus, Some(BusOp::Read | BusOp::ReadX | BusOp::Update))
                    {
                        return Err(fail("fill requires BusRd, BusRdX or BusUpd"));
                    }
                    if o.data.is_fill() && holds {
                        return Err(fail("fill from a state that already holds the copy"));
                    }
                    if let DataOp::Write {
                        fill, broadcast, ..
                    } = o.data
                    {
                        if !fill && !holds {
                            return Err(fail("write completion in a state without a copy"));
                        }
                        if broadcast && o.bus != Some(BusOp::Update) {
                            return Err(fail("broadcast write requires BusUpd"));
                        }
                    }
                    if matches!(o.data, DataOp::Evict { writeback: true })
                        && o.bus != Some(BusOp::WriteBack)
                    {
                        return Err(fail("writeback eviction requires BusWB"));
                    }
                    if matches!(o.data, DataOp::Evict { .. })
                        && self.states[o.next.index()].attrs.holds_copy
                    {
                        return Err(fail("an eviction completion must end in a copy-less state"));
                    }
                }
            }

            // Snoop reactions must respect the copy-carrying discipline
            // around transient states: a snoop never conjures a copy in
            // a copy-less transient, and a stable state never enters the
            // transient (request-pending) regime via a snoop.
            if transient_mask != 0 {
                for (si, row) in self.snoop_table.iter().enumerate() {
                    for bus in BusOp::ALL {
                        let sn = row[bus.index()];
                        let fail = |why: String| SpecError::BadTransient {
                            state: self.states[si].name.clone(),
                            why,
                        };
                        if is_transient(StateId(si as u8)) {
                            if !self.states[si].attrs.holds_copy
                                && self.states[sn.next.index()].attrs.holds_copy
                            {
                                return Err(fail(format!(
                                    "snoop on {bus} moves a copy-less transient into \
                                     copy-holding {}",
                                    self.states[sn.next.index()].name
                                )));
                            }
                        } else if is_transient(sn.next) {
                            return Err(fail(format!(
                                "snoop on {bus} moves a stable state into transient {} \
                                 (transient states are entered by processor requests only)",
                                self.states[sn.next.index()].name
                            )));
                        }
                    }
                }
            }
        }

        // --- Emitted bus ops ---------------------------------------------------
        let emitted = emitted_ops(&proc_table, &transients);

        // --- Strong connectivity (Definition 1) --------------------------------
        let n = self.states.len();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for (si, row) in proc_table.iter().enumerate() {
            for e in ProcEvent::ALL {
                for c in GlobalCtx::ALL {
                    edges.push((si, row[e.index()][c.index()].next.index()));
                }
            }
        }
        for (si, t) in transients.iter().enumerate() {
            let Some(t) = t else { continue };
            for c in GlobalCtx::ALL {
                edges.push((si, t.completion[c.index()].next.index()));
            }
        }
        for (si, row) in self.snoop_table.iter().enumerate() {
            for &b in &emitted {
                edges.push((si, row[b.index()].next.index()));
            }
        }
        if !self.allow_disconnected && !strongly_connected(n, &edges) {
            return Err(SpecError::NotStronglyConnected);
        }

        Ok(ProtocolSpec {
            name: self.name,
            states: self.states,
            characteristic: self.characteristic,
            proc_table,
            snoop_table: self.snoop_table,
            emitted_bus_ops: emitted,
            transients,
            transient_mask,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-state write-invalidate protocol used only by unit
    /// tests: Invalid and Modified.
    fn tiny() -> Result<ProtocolSpec, SpecError> {
        let mut b = SpecBuilder::new("Tiny");
        let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
        let m = b.state("Modified", "M", StateAttrs::DIRTY);
        b.on(
            inv,
            ProcEvent::Read,
            Outcome::write_miss_invalidate(m).data(DataOp::Read { fill: true }),
        );
        // Read miss loads exclusively with ownership (read-for-ownership).
        b.on(
            inv,
            ProcEvent::Read,
            Outcome {
                next: m,
                bus: Some(BusOp::ReadX),
                data: DataOp::Read { fill: true },
            },
        );
        b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(m));
        b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));
        b.on(m, ProcEvent::Read, Outcome::read_hit(m));
        b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
        b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));
        b.snoop(m, BusOp::ReadX, SnoopOutcome::flush(inv));
        b.build()
    }

    #[test]
    fn tiny_protocol_builds() {
        let p = tiny().expect("tiny protocol should validate");
        assert_eq!(p.num_states(), 2);
        assert_eq!(p.name(), "Tiny");
        let m = p.state_by_name("Modified").unwrap();
        assert_eq!(p.state_by_name("M"), Some(m));
        assert!(p.attrs(m).owned);
        assert_eq!(p.emitted_bus_ops(), &[BusOp::ReadX, BusOp::WriteBack]);
        assert_eq!(p.valid_states().count(), 1);
        assert_eq!(p.owned_states().count(), 1);
    }

    #[test]
    fn rule_ids_are_dense_and_named_after_stimuli() {
        let p = tiny().unwrap();
        assert_eq!(p.num_rules(), 6);
        let mut seen = vec![false; p.num_rules()];
        for state in p.state_ids() {
            for &event in &ProcEvent::ALL {
                let rid = p.rule_id(state, event);
                assert!(rid < p.num_rules());
                assert!(!seen[rid], "rule ids must be distinct");
                seen[rid] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
        let m = p.state_by_name("M").unwrap();
        assert_eq!(p.rule_name(p.rule_id(m, ProcEvent::Write)), "M:W");
        assert_eq!(
            p.rule_name(p.rule_id(p.invalid(), ProcEvent::Read)),
            "Inv:R"
        );
    }

    #[test]
    fn missing_outcome_is_rejected() {
        let mut b = SpecBuilder::new("Broken");
        let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
        let m = b.state("Modified", "M", StateAttrs::DIRTY);
        b.on(
            inv,
            ProcEvent::Read,
            Outcome {
                next: m,
                bus: Some(BusOp::ReadX),
                data: DataOp::Read { fill: true },
            },
        );
        // Write and Replace rows deliberately missing.
        let err = b.build().unwrap_err();
        assert!(matches!(err, SpecError::MissingOutcome { .. }));
    }

    #[test]
    fn null_characteristic_ctx_dependence_rejected() {
        let mut b = SpecBuilder::new("SneakyCtx");
        let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
        let e = b.state("Excl", "E", StateAttrs::VALID_EXCLUSIVE);
        let s = b.state("Shared", "S", StateAttrs::SHARED_CLEAN);
        b.on_sharing(
            inv,
            ProcEvent::Read,
            Outcome::read_miss(e),
            Outcome::read_miss(s),
        );
        b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(e));
        b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));
        for st in [e, s] {
            b.on(st, ProcEvent::Read, Outcome::read_hit(st));
            b.on(st, ProcEvent::Write, Outcome::write_hit_invalidate(e));
            b.on(st, ProcEvent::Replace, Outcome::evict_clean(inv));
        }
        b.snoop(e, BusOp::Read, SnoopOutcome::supply(s));
        b.snoop(s, BusOp::Read, SnoopOutcome::supply(s));
        b.snoop(e, BusOp::ReadX, SnoopOutcome::to(inv));
        b.snoop(s, BusOp::ReadX, SnoopOutcome::to(inv));
        b.snoop(e, BusOp::Upgrade, SnoopOutcome::to(inv));
        b.snoop(s, BusOp::Upgrade, SnoopOutcome::to(inv));
        // Declared Null but read-miss outcome depends on sharing.
        let err = b.build().unwrap_err();
        assert!(matches!(
            err,
            SpecError::NullCharacteristicCtxDependence { .. }
        ));
    }

    #[test]
    fn fill_without_bus_rejected() {
        let mut b = SpecBuilder::new("NoBusFill");
        let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
        let m = b.state("Modified", "M", StateAttrs::DIRTY);
        b.on(
            inv,
            ProcEvent::Read,
            Outcome {
                next: m,
                bus: None, // fill with no bus transaction
                data: DataOp::Read { fill: true },
            },
        );
        b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(m));
        b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));
        b.on(m, ProcEvent::Read, Outcome::read_hit(m));
        b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
        b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));
        let err = b.build().unwrap_err();
        assert!(matches!(err, SpecError::InconsistentData { .. }));
    }

    #[test]
    fn replacement_must_leave_cache() {
        let mut b = SpecBuilder::new("StickyBlock");
        let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
        let m = b.state("Modified", "M", StateAttrs::DIRTY);
        b.on(
            inv,
            ProcEvent::Read,
            Outcome {
                next: m,
                bus: Some(BusOp::ReadX),
                data: DataOp::Read { fill: true },
            },
        );
        b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(m));
        b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));
        b.on(m, ProcEvent::Read, Outcome::read_hit(m));
        b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
        // Replacement that stays in M.
        b.on(
            m,
            ProcEvent::Replace,
            Outcome {
                next: m,
                bus: Some(BusOp::WriteBack),
                data: DataOp::Evict { writeback: true },
            },
        );
        b.snoop(m, BusOp::ReadX, SnoopOutcome::flush(inv));
        let err = b.build().unwrap_err();
        assert!(matches!(err, SpecError::InconsistentData { .. }));
    }

    #[test]
    fn disconnected_fsm_rejected_unless_allowed() {
        // A valid state that can never be left again except it can't be
        // reached: make Invalid unreachable from M by replacing the
        // Replace outcome... Replace must leave the cache, so instead we
        // build a three-state machine where the third state is
        // unreachable.
        let build = |allow: bool| {
            let mut b = SpecBuilder::new("Island");
            let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
            let m = b.state("Modified", "M", StateAttrs::DIRTY);
            let island = b.state("Island", "X", StateAttrs::SHARED_CLEAN);
            if allow {
                b = {
                    let mut b2 = SpecBuilder::new("Island").allow_disconnected();
                    let inv2 = b2.state("Invalid", "Inv", StateAttrs::INVALID);
                    let m2 = b2.state("Modified", "M", StateAttrs::DIRTY);
                    let island2 = b2.state("Island", "X", StateAttrs::SHARED_CLEAN);
                    assert_eq!((inv2, m2, island2), (inv, m, island));
                    b2
                };
            }
            b.on(
                inv,
                ProcEvent::Read,
                Outcome {
                    next: m,
                    bus: Some(BusOp::ReadX),
                    data: DataOp::Read { fill: true },
                },
            );
            b.on(inv, ProcEvent::Write, Outcome::write_miss_invalidate(m));
            b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));
            b.on(m, ProcEvent::Read, Outcome::read_hit(m));
            b.on(m, ProcEvent::Write, Outcome::write_hit_silent(m));
            b.on(m, ProcEvent::Replace, Outcome::evict_writeback(inv));
            b.on(island, ProcEvent::Read, Outcome::read_hit(island));
            b.on(island, ProcEvent::Write, Outcome::write_hit_invalidate(m));
            b.on(island, ProcEvent::Replace, Outcome::evict_clean(inv));
            b.snoop(m, BusOp::ReadX, SnoopOutcome::flush(inv));
            b.build()
        };
        assert_eq!(build(false).unwrap_err(), SpecError::NotStronglyConnected);
        assert!(build(true).is_ok());
    }

    #[test]
    fn describe_mentions_every_state() {
        let p = tiny().unwrap();
        let text = p.describe();
        assert!(text.contains("Invalid"));
        assert!(text.contains("Modified"));
        assert!(text.contains("BusRdX"));
    }
}
