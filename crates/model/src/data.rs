//! Data-consistency context variables (Definitions 3 and 4).
//!
//! To verify that a protocol "always returns the latest value on each
//! load" (§2.2), the paper augments the global state with *context
//! variables*: each cache `Cᵢ` carries `cdataᵢ ∈ {nodata, fresh,
//! obsolete}` and memory carries `mdata ∈ {fresh, obsolete}` (§2.4).
//! A store makes the writer's copy `fresh`, demotes every other
//! un-updated copy and (for write-back protocols) memory to `obsolete`;
//! a fill copies the freshness of its source. A reachable state in which
//! a processor can read an `obsolete` copy is an *erroneous* state
//! (Definition 3) and the protocol is incorrect.
//!
//! This module defines the value domains and [`DataOp`], the declarative
//! description of how a transition moves data. The actual update rules
//! are implemented once, in protocol-independent form, by
//! `ccv-core::augmented` (symbolic) and `ccv-enum::concrete_data`
//! (explicit), both driven by the same `DataOp`.

use core::fmt;

/// Freshness of a cached copy — the paper's `cdata` domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CData {
    /// The cache holds no data for the block (`nodata`).
    #[default]
    NoData,
    /// The copy equals the latest stored value (`fresh`).
    Fresh,
    /// The copy predates the latest store (`obsolete`). Readable
    /// obsolete copies are the data-inconsistency the verifier hunts.
    Obsolete,
}

impl CData {
    /// All values, in canonical order.
    pub const ALL: [CData; 3] = [CData::NoData, CData::Fresh, CData::Obsolete];

    /// Dense index into [`CData::ALL`], for array- and bitmask-backed
    /// structures keyed by `(state, cdata)` class slots.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Paper-style lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            CData::NoData => "nodata",
            CData::Fresh => "fresh",
            CData::Obsolete => "obsolete",
        }
    }
}

impl fmt::Display for CData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Freshness of the memory copy — the paper's `mdata` domain.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MData {
    /// Memory holds the latest stored value.
    #[default]
    Fresh,
    /// Memory is stale; some cache owns the latest value.
    Obsolete,
}

impl MData {
    /// All values, in canonical order.
    pub const ALL: [MData; 2] = [MData::Fresh, MData::Obsolete];

    /// Paper-style lowercase label.
    pub fn label(self) -> &'static str {
        match self {
            MData::Fresh => "fresh",
            MData::Obsolete => "obsolete",
        }
    }

    /// Conversion to the cache-side domain (memory always "holds data").
    pub fn as_cdata(self) -> CData {
        match self {
            MData::Fresh => CData::Fresh,
            MData::Obsolete => CData::Obsolete,
        }
    }
}

impl fmt::Display for MData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Declarative description of the data movement performed by one
/// protocol transition, from the originator's point of view.
///
/// Together with the snoop table (which says who supplies data, who
/// flushes to memory, and who receives broadcast updates —
/// [`crate::SnoopOutcome`]), a `DataOp` fully determines the update of
/// the `cdata`/`mdata` context variables:
///
/// * a **fill** reads from the bus response: if any snooper supplies the
///   block the data comes from that cache, otherwise from memory —
///   *after* any snooper flushes have updated memory (the atomic
///   transaction assumption of §2.4);
/// * a **write** creates a new value: the writer becomes `fresh`, memory
///   becomes `obsolete` unless the transition writes through, and every
///   other surviving copy becomes `obsolete` unless it received the
///   broadcast update.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DataOp {
    /// No data movement (read hit, silent write permission change with
    /// no store — unused by shipped protocols but available).
    #[default]
    None,
    /// Read: the originator consumes the block. `fill = true` when the
    /// block is (re)loaded from the bus (read miss); `fill = false` for
    /// a read hit on the local copy.
    Read {
        /// Block is loaded from the bus response.
        fill: bool,
    },
    /// Write: the originator stores a new value.
    Write {
        /// Block is first loaded from the bus response (write miss).
        fill: bool,
        /// The new value is simultaneously written to main memory
        /// (write-through, e.g. Write-Once's first write or Firefly's
        /// shared write).
        through: bool,
        /// The new value is broadcast to other caches, which update in
        /// place if their snoop reaction has
        /// [`crate::SnoopOutcome::receives_update`] set.
        broadcast: bool,
    },
    /// Replacement: the block leaves the cache. `writeback = true`
    /// copies the victim to memory first (owned states).
    Evict {
        /// The victim is written back to memory.
        writeback: bool,
    },
}

impl DataOp {
    /// True iff the transition stores a new value (any `Write`).
    #[inline]
    pub fn is_store(self) -> bool {
        matches!(self, DataOp::Write { .. })
    }

    /// True iff the transition loads the block from the bus.
    #[inline]
    pub fn is_fill(self) -> bool {
        matches!(
            self,
            DataOp::Read { fill: true } | DataOp::Write { fill: true, .. }
        )
    }

    /// True iff the local processor observes (reads) the block value as
    /// part of this transition — used to flag stale-read errors exactly
    /// when a value is consumed.
    #[inline]
    pub fn observes_value(self) -> bool {
        matches!(self, DataOp::Read { .. })
    }
}

/// A stale access observed while applying a concrete transition — the
/// erroneous behaviours of Definition 3, attributed to the cache that
/// performed them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConcreteError {
    /// Cache `cache` read its local copy while it was obsolete.
    StaleReadHit {
        /// The offending cache index.
        cache: usize,
    },
    /// Cache `cache` filled a miss from an obsolete source.
    StaleFill {
        /// The offending cache index.
        cache: usize,
    },
}

/// Maximum cache index representable by an [`ErrorMask`].
pub const ERROR_MASK_MAX_CACHES: usize = 16;

/// A packed set of [`ConcreteError`]s for machines of up to 16 caches.
///
/// The explicit-state enumeration kernel generates millions of
/// successors per second; almost none of them carry errors, so the
/// error set must be `Copy` and allocation-free. Bit `i` records a
/// stale read hit by cache `i`, bit `16 + i` a stale fill by cache `i`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct ErrorMask(u32);

impl ErrorMask {
    /// The empty set.
    pub const EMPTY: ErrorMask = ErrorMask(0);

    #[inline]
    fn bit(err: ConcreteError) -> u32 {
        match err {
            ConcreteError::StaleReadHit { cache } => {
                debug_assert!(cache < ERROR_MASK_MAX_CACHES);
                1 << cache
            }
            ConcreteError::StaleFill { cache } => {
                debug_assert!(cache < ERROR_MASK_MAX_CACHES);
                1 << (ERROR_MASK_MAX_CACHES + cache)
            }
        }
    }

    /// Adds `err` to the set.
    #[inline]
    pub fn insert(&mut self, err: ConcreteError) {
        self.0 |= Self::bit(err);
    }

    /// True iff `err` is in the set.
    #[inline]
    pub fn contains(self, err: ConcreteError) -> bool {
        self.0 & Self::bit(err) != 0
    }

    /// True iff no error has been recorded.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Number of recorded errors.
    #[inline]
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Iterates the recorded errors, stale read hits first, each group
    /// in cache order.
    pub fn iter(self) -> impl Iterator<Item = ConcreteError> {
        let mask = self.0;
        (0..ERROR_MASK_MAX_CACHES)
            .filter(move |i| mask & (1 << i) != 0)
            .map(|cache| ConcreteError::StaleReadHit { cache })
            .chain(
                (0..ERROR_MASK_MAX_CACHES)
                    .filter(move |i| mask & (1 << (ERROR_MASK_MAX_CACHES + i)) != 0)
                    .map(|cache| ConcreteError::StaleFill { cache }),
            )
    }
}

impl fmt::Debug for ErrorMask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<ConcreteError> for ErrorMask {
    fn from_iter<T: IntoIterator<Item = ConcreteError>>(iter: T) -> ErrorMask {
        let mut m = ErrorMask::EMPTY;
        for e in iter {
            m.insert(e);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper() {
        assert_eq!(CData::NoData.to_string(), "nodata");
        assert_eq!(CData::Fresh.to_string(), "fresh");
        assert_eq!(CData::Obsolete.to_string(), "obsolete");
        assert_eq!(MData::Fresh.to_string(), "fresh");
        assert_eq!(MData::Obsolete.to_string(), "obsolete");
    }

    #[test]
    fn mdata_to_cdata() {
        assert_eq!(MData::Fresh.as_cdata(), CData::Fresh);
        assert_eq!(MData::Obsolete.as_cdata(), CData::Obsolete);
    }

    #[test]
    fn dataop_classification() {
        assert!(DataOp::Write {
            fill: true,
            through: false,
            broadcast: false
        }
        .is_store());
        assert!(!DataOp::Read { fill: true }.is_store());
        assert!(DataOp::Read { fill: true }.is_fill());
        assert!(!DataOp::Read { fill: false }.is_fill());
        assert!(DataOp::Write {
            fill: true,
            through: false,
            broadcast: false
        }
        .is_fill());
        assert!(DataOp::Read { fill: false }.observes_value());
        assert!(!DataOp::Evict { writeback: true }.observes_value());
        assert!(!DataOp::None.is_fill());
    }

    #[test]
    fn error_mask_roundtrips_every_error() {
        let mut m = ErrorMask::EMPTY;
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        for cache in 0..ERROR_MASK_MAX_CACHES {
            m.insert(ConcreteError::StaleReadHit { cache });
            m.insert(ConcreteError::StaleFill { cache });
        }
        assert_eq!(m.len(), 2 * ERROR_MASK_MAX_CACHES);
        for cache in 0..ERROR_MASK_MAX_CACHES {
            assert!(m.contains(ConcreteError::StaleReadHit { cache }));
            assert!(m.contains(ConcreteError::StaleFill { cache }));
        }
        assert_eq!(m.iter().count(), 2 * ERROR_MASK_MAX_CACHES);
    }

    #[test]
    fn error_mask_is_idempotent_and_order_stable() {
        let mut m = ErrorMask::EMPTY;
        m.insert(ConcreteError::StaleFill { cache: 3 });
        m.insert(ConcreteError::StaleFill { cache: 3 });
        m.insert(ConcreteError::StaleReadHit { cache: 1 });
        assert_eq!(m.len(), 2);
        let listed: Vec<ConcreteError> = m.iter().collect();
        assert_eq!(
            listed,
            vec![
                ConcreteError::StaleReadHit { cache: 1 },
                ConcreteError::StaleFill { cache: 3 },
            ]
        );
        let rebuilt: ErrorMask = listed.into_iter().collect();
        assert_eq!(rebuilt, m);
    }
}
