//! Strong-connectivity check for the local protocol FSM.
//!
//! Definition 1 of the paper requires the cache FSM to be *strongly
//! connected*: "starting from any given state there exists at least one
//! path leading to all other states". The edge relation is the union of
//! all processor-outcome transitions (over every context) and all snoop
//! reactions to bus operations the protocol actually emits.
//!
//! State sets are tiny (|Q| ≤ 8 for every shipped protocol), so a pair
//! of DFS sweeps (forward from `q0`, backward from `q0`) is plenty.

/// Returns `true` iff the directed graph over `n` nodes with the given
/// `edges` is strongly connected. Self-loops and duplicate edges are
/// permitted. An empty graph (`n == 0`) is vacuously connected.
pub fn strongly_connected(n: usize, edges: &[(usize, usize)]) -> bool {
    if n <= 1 {
        return true;
    }
    let mut fwd = vec![Vec::new(); n];
    let mut bwd = vec![Vec::new(); n];
    for &(a, b) in edges {
        debug_assert!(a < n && b < n, "edge ({a},{b}) out of range for n={n}");
        fwd[a].push(b);
        bwd[b].push(a);
    }
    reaches_all(&fwd, n) && reaches_all(&bwd, n)
}

/// DFS from node 0; true iff every node is visited.
fn reaches_all(adj: &[Vec<usize>], n: usize) -> bool {
    let mut seen = vec![false; n];
    let mut stack = vec![0usize];
    seen[0] = true;
    let mut count = 1usize;
    while let Some(v) = stack.pop() {
        for &w in &adj[v] {
            if !seen[w] {
                seen[w] = true;
                count += 1;
                stack.push(w);
            }
        }
    }
    count == n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_singleton_are_connected() {
        assert!(strongly_connected(0, &[]));
        assert!(strongly_connected(1, &[]));
        assert!(strongly_connected(1, &[(0, 0)]));
    }

    #[test]
    fn two_cycle_is_connected() {
        assert!(strongly_connected(2, &[(0, 1), (1, 0)]));
    }

    #[test]
    fn one_way_edge_is_not_connected() {
        assert!(!strongly_connected(2, &[(0, 1)]));
        assert!(!strongly_connected(2, &[(1, 0)]));
    }

    #[test]
    fn ring_is_connected() {
        let edges: Vec<_> = (0..5).map(|i| (i, (i + 1) % 5)).collect();
        assert!(strongly_connected(5, &edges));
    }

    #[test]
    fn ring_with_break_is_not_connected() {
        let edges: Vec<_> = (0..4).map(|i| (i, (i + 1) % 5)).collect();
        assert!(!strongly_connected(5, &edges));
    }

    #[test]
    fn unreachable_island_detected() {
        // 0 <-> 1 connected, 2 only points in.
        assert!(!strongly_connected(3, &[(0, 1), (1, 0), (2, 0)]));
        // ... and 2 only pointed at.
        assert!(!strongly_connected(3, &[(0, 1), (1, 0), (0, 2)]));
    }

    #[test]
    fn duplicates_and_self_loops_ignored() {
        assert!(strongly_connected(
            2,
            &[(0, 0), (0, 1), (0, 1), (1, 1), (1, 0)]
        ));
    }
}
