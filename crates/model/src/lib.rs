//! # ccv-model — protocol FSM model and protocol library
//!
//! The foundation of the `ccv` cache-coherence verification suite: a
//! table-driven representation of snooping cache coherence protocols as
//! the deterministic finite state machines `M = (Q, Σ, F, δ)` of
//!
//! > F. Pong and M. Dubois, *"The Verification of Cache Coherence
//! > Protocols"*, SPAA 1993.
//!
//! One validated [`ProtocolSpec`] drives every engine in the workspace:
//!
//! * the **symbolic verifier** (`ccv-core`) expands composite states
//!   over an arbitrary number of caches;
//! * the **enumerative baseline** (`ccv-enum`) explores the explicit
//!   state space of `n` caches;
//! * the **trace simulator** (`ccv-sim`) executes the protocol against
//!   synthetic multiprocessor workloads.
//!
//! ## Model at a glance
//!
//! * [`StateId`]/[`StateInfo`]/[`StateAttrs`] — the state symbols `Q`
//!   with protocol-independent semantic attributes (presence,
//!   ownership, exclusivity) from which the verifier derives the
//!   structural "permissible state" predicates of §2.1.
//! * [`ProcEvent`] — the operation alphabet `Σ = {R, W, Rep}`.
//! * [`GlobalCtx`]/[`Characteristic`] — the characteristic function `F`
//!   (null, or the sharing-detection function of Illinois/Firefly/
//!   Dragon).
//! * [`BusOp`]/[`SnoopOutcome`] — broadcast transactions and the
//!   *coincident transitions* they induce in every other cache.
//! * [`CData`]/[`MData`]/[`DataOp`] — the data-consistency context
//!   variables of Definitions 3–4 and the declarative data movement of
//!   each transition.
//! * [`ProtocolSpec`]/[`SpecBuilder`] — the validated protocol object.
//! * [`protocols`] — Illinois plus every protocol of Archibald & Baer's
//!   study, MSI/MOESI, and deliberately buggy mutants.
//!
//! ## Example
//!
//! ```
//! use ccv_model::{protocols, GlobalCtx, ProcEvent};
//!
//! let illinois = protocols::illinois();
//! let invalid = illinois.invalid();
//! // A read miss while another cache holds the block fills Shared...
//! let shared = illinois
//!     .outcome(invalid, ProcEvent::Read, GlobalCtx::SHARED_CLEAN)
//!     .next;
//! assert_eq!(illinois.state(shared).name, "Shared");
//! // ...but fills Valid-Exclusive when the cache is alone.
//! let ve = illinois
//!     .outcome(invalid, ProcEvent::Read, GlobalCtx::ALONE)
//!     .next;
//! assert_eq!(illinois.state(ve).name, "Valid-Exclusive");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod bus;
mod connectivity;
mod context;
mod data;
mod event;
mod spec;
mod state;

pub mod dsl;
pub mod local_graph;
pub mod mutate;
pub mod protocols;

pub use bus::{BusOp, SnoopOutcome};
pub use connectivity::strongly_connected;
pub use context::{Characteristic, GlobalCtx};
pub use data::{CData, ConcreteError, DataOp, ErrorMask, MData, ERROR_MASK_MAX_CACHES};
pub use event::ProcEvent;
pub use spec::{Outcome, ProtocolSpec, SpecBuilder, SpecError, TransientInfo};
pub use state::{StateAttrs, StateId, StateInfo};
