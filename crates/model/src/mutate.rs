//! Exhaustive single-mutation enumeration.
//!
//! Generates every protocol obtained from a base protocol by one
//! "stroke-of-the-pen" editing mistake:
//!
//! * redirecting the next state of one processor outcome (per
//!   context);
//! * redirecting the next state of one snoop reaction;
//! * toggling one snoop data flag (`supply` / `flush` / `update`);
//! * dropping one bus transaction (making a transition silent);
//! * dropping one replacement write-back;
//! * for split-transaction protocols: swapping one request phase onto
//!   the wrong transient state, and redirecting where one completion
//!   phase lands.
//!
//! The sweep serves two purposes. As **mutation testing of the
//! verifier** (experiment E10): every mutant must either still verify
//! — some mutations are genuinely benign or equivalent — or be
//! rejected with a counterexample; none may crash or diverge. And as
//! a **design-space probe**: the surviving mutants show which parts of
//! a protocol are forced and which are free choices (e.g. cache-to-
//! cache supply of clean blocks is an optimisation, not a correctness
//! requirement).

use crate::{BusOp, DataOp, GlobalCtx, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, StateId};

/// One generated mutant with a description of the edit.
#[derive(Clone, Debug)]
pub struct Mutant {
    /// What was changed, human-readable.
    pub description: String,
    /// The mutated protocol.
    pub spec: ProtocolSpec,
}

/// Enumerates every single-edit mutant of `spec`.
///
/// Mutants are *well-formed by construction* (they go through the
/// same override API as the hand-written buggy mutants); edits that
/// would only change dead table entries (e.g. the context-split of a
/// null-`F` protocol) are skipped via outcome comparison.
pub fn single_mutants(spec: &ProtocolSpec) -> Vec<Mutant> {
    let mut out = Vec::new();
    let states: Vec<StateId> = spec.state_ids().collect();

    // --- Processor outcome edits -----------------------------------------
    for &s in &states {
        // A transient state's ordinary-event rows are stall self-loops
        // the engines never read (a stalled cache only completes);
        // editing them would be a null mutation.
        if spec.is_transient(s) {
            continue;
        }
        for e in ProcEvent::ALL {
            // Deduplicate contexts that share an outcome so one edit is
            // one mutant.
            let mut seen_ctx: Vec<(Outcome, Vec<GlobalCtx>)> = Vec::new();
            for c in GlobalCtx::ALL {
                let o = spec.outcome(s, e, c);
                if let Some(entry) = seen_ctx.iter_mut().find(|(so, _)| *so == o) {
                    entry.1.push(c);
                } else {
                    seen_ctx.push((o, vec![c]));
                }
            }
            for (outcome, ctxs) in seen_ctx {
                // Redirect the next state.
                for &target in &states {
                    if target == outcome.next {
                        continue;
                    }
                    // A request phase may be swapped onto another
                    // transient state of the same copy-holding shape —
                    // the classic "wrong pending transaction" wiring
                    // slip — but never unwound into a stable state by
                    // this edit (the silent outcome would teleport a
                    // copy in with no bus), and never across the
                    // copy/copy-less boundary (a silent transition
                    // cannot conjure or discard data).
                    if spec.is_transient(outcome.next) {
                        if !spec.is_transient(target)
                            || spec.attrs(target).holds_copy != spec.attrs(outcome.next).holds_copy
                        {
                            continue;
                        }
                    } else if spec.is_transient(target) {
                        // An atomic transition cannot be redirected
                        // into a transient: it carries its own bus
                        // transaction, while a transient's is pending.
                        continue;
                    } else {
                        // Replacements must leave the cache; other
                        // events may be redirected anywhere (including
                        // Invalid — a "drop the line" bug).
                        if e == ProcEvent::Replace && spec.attrs(target).holds_copy {
                            continue;
                        }
                        // A write landing in a copy-less state would
                        // drop the freshly written data on the floor in
                        // a way no real controller does; skip to keep
                        // mutants plausible.
                        if e != ProcEvent::Replace && !spec.attrs(target).holds_copy {
                            continue;
                        }
                    }
                    let mut m = spec.clone();
                    for &c in &ctxs {
                        m = m.override_outcome(
                            s,
                            e,
                            Some(c),
                            Outcome {
                                next: target,
                                ..outcome
                            },
                        );
                    }
                    out.push(Mutant {
                        description: format!(
                            "{} on {} [{}]: next {} -> {}",
                            e,
                            spec.state(s).short,
                            ctxs.iter()
                                .map(|c| c.to_string())
                                .collect::<Vec<_>>()
                                .join("/"),
                            spec.state(outcome.next).short,
                            spec.state(target).short
                        ),
                        spec: m.renamed(format!("{}~proc", spec.name())),
                    });
                }
                // Drop the replacement write-back.
                if let DataOp::Evict { writeback: true } = outcome.data {
                    let mut m = spec.clone();
                    for &c in &ctxs {
                        m = m.override_outcome(s, e, Some(c), Outcome::evict_clean(outcome.next));
                    }
                    out.push(Mutant {
                        description: format!(
                            "replace on {}: write-back dropped",
                            spec.state(s).short
                        ),
                        spec: m.renamed(format!("{}~wb", spec.name())),
                    });
                }
                // Silence the bus transaction (keep the local effect).
                if let (Some(bus), false) = (outcome.bus, outcome.data.is_fill()) {
                    // A fill without a bus is physically impossible,
                    // and a write-back *is* its bus transaction (the
                    // contradiction-free version of forgetting it is
                    // the write-back-dropped mutant above); everything
                    // else can plausibly "forget" to drive the bus.
                    if matches!(outcome.data, DataOp::Evict { writeback: true }) {
                        continue;
                    }
                    let silenced = Outcome {
                        bus: None,
                        data: match outcome.data {
                            // A broadcast needs its bus; degrade to a
                            // plain local write.
                            DataOp::Write { fill, through, .. } => DataOp::Write {
                                fill,
                                through,
                                broadcast: false,
                            },
                            other => other,
                        },
                        ..outcome
                    };
                    let mut m = spec.clone();
                    for &c in &ctxs {
                        m = m.override_outcome(s, e, Some(c), silenced);
                    }
                    out.push(Mutant {
                        description: format!(
                            "{} on {}: bus transaction {bus} dropped",
                            e,
                            spec.state(s).short,
                        ),
                        spec: m.renamed(format!("{}~silent", spec.name())),
                    });
                }
            }
        }
    }

    // --- Snoop edits -------------------------------------------------------
    let emitted: Vec<BusOp> = spec.emitted_bus_ops().to_vec();
    for &s in &states {
        if s == StateId::INVALID {
            continue;
        }
        for &bus in &emitted {
            let sn = spec.snoop(s, bus);
            // Redirect the snoop target.
            for &target in &states {
                if target == sn.next {
                    continue;
                }
                // Stay within the builder's transient discipline: a
                // snoop never conjures a copy in a copy-less transient
                // and never moves a stable state into the
                // request-pending regime (SpecBuilder rejects both, so
                // a mutant doing either would not be constructible).
                if spec.is_transient(s)
                    && !spec.attrs(s).holds_copy
                    && spec.attrs(target).holds_copy
                {
                    continue;
                }
                if !spec.is_transient(s) && spec.is_transient(target) {
                    continue;
                }
                let m = spec
                    .clone()
                    .override_snoop(s, bus, SnoopOutcome { next: target, ..sn });
                out.push(Mutant {
                    description: format!(
                        "snoop {} on {}: next {} -> {}",
                        spec.state(s).short,
                        bus,
                        spec.state(sn.next).short,
                        spec.state(target).short
                    ),
                    spec: m.renamed(format!("{}~snoop", spec.name())),
                });
            }
            // Toggle the data flags.
            for (flag, name) in [(0, "supply"), (1, "flush"), (2, "update")] {
                let mut toggled = sn;
                match flag {
                    0 => toggled.supplies_data = !toggled.supplies_data,
                    1 => toggled.flushes_to_memory = !toggled.flushes_to_memory,
                    _ => toggled.receives_update = !toggled.receives_update,
                }
                let m = spec.clone().override_snoop(s, bus, toggled);
                out.push(Mutant {
                    description: format!(
                        "snoop {} on {}: {} toggled",
                        spec.state(s).short,
                        bus,
                        name
                    ),
                    spec: m.renamed(format!("{}~flag", spec.name())),
                });
            }
        }
    }

    // --- Completion edits (split-transaction protocols) --------------------
    // The completion phase of a transient state lands in the wrong
    // stable state — e.g. a read-pending cache installing the line as
    // if it had won a write transaction. The pending bus operation is
    // structural (it names the transaction being awaited), so only the
    // landing state is edited; the bus and data path ride along.
    for &t in &states {
        if !spec.is_transient(t) {
            continue;
        }
        let mut seen_ctx: Vec<(Outcome, Vec<GlobalCtx>)> = Vec::new();
        for c in GlobalCtx::ALL {
            let o = spec.outcome(t, ProcEvent::Complete, c);
            if let Some(entry) = seen_ctx.iter_mut().find(|(so, _)| *so == o) {
                entry.1.push(c);
            } else {
                seen_ctx.push((o, vec![c]));
            }
        }
        for (outcome, ctxs) in seen_ctx {
            for &target in &states {
                if target == outcome.next || spec.is_transient(target) {
                    continue;
                }
                // A completion installs or upgrades a copy; landing in
                // a copy-less state would be the separate "drop the
                // line" class already covered by replacement edits.
                if !spec.attrs(target).holds_copy {
                    continue;
                }
                let mut m = spec.clone();
                for &c in &ctxs {
                    m = m.override_completion(
                        t,
                        Some(c),
                        Outcome {
                            next: target,
                            ..outcome
                        },
                    );
                }
                out.push(Mutant {
                    description: format!(
                        "complete on {} [{}]: next {} -> {}",
                        spec.state(t).short,
                        ctxs.iter()
                            .map(|c| c.to_string())
                            .collect::<Vec<_>>()
                            .join("/"),
                        spec.state(outcome.next).short,
                        spec.state(target).short
                    ),
                    spec: m.renamed(format!("{}~compl", spec.name())),
                });
            }
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols::{illinois, msi};

    #[test]
    fn illinois_has_a_substantial_mutant_population() {
        let ms = single_mutants(&illinois());
        assert!(ms.len() > 80, "only {} mutants", ms.len());
        // All descriptions are distinct enough to identify the edit.
        for m in &ms {
            assert!(!m.description.is_empty());
        }
    }

    #[test]
    fn mutants_differ_from_the_base() {
        let base = msi();
        for m in single_mutants(&base).into_iter().take(50) {
            let mut differs = false;
            for s in base.state_ids() {
                for e in ProcEvent::ALL {
                    for c in GlobalCtx::ALL {
                        differs |= base.outcome(s, e, c) != m.spec.outcome(s, e, c);
                    }
                }
                for b in BusOp::ALL {
                    differs |= base.snoop(s, b) != m.spec.snoop(s, b);
                }
            }
            assert!(differs, "null mutation: {}", m.description);
        }
    }

    #[test]
    fn split_protocols_grow_transient_mutation_classes() {
        use crate::protocols::split_msi;
        let spec = split_msi();
        let ms = single_mutants(&spec);
        // Completion redirects exist for every transient state.
        let compl: Vec<&Mutant> = ms
            .iter()
            .filter(|m| m.description.starts_with("complete on"))
            .collect();
        assert!(compl.len() >= 3, "only {} completion mutants", compl.len());
        // Phase swaps exist: a request phase rewired onto another
        // transient (e.g. read enters Write-Pending). Only processor
        // edits qualify — snoops may legitimately retarget a transient
        // to anywhere.
        let swaps: Vec<&Mutant> = ms
            .iter()
            .filter(|m| {
                (m.description.starts_with("R on")
                    || m.description.starts_with("W on")
                    || m.description.starts_with("Z on"))
                    && (m.description.contains("next IS_D ->")
                        || m.description.contains("next IM_D ->")
                        || m.description.contains("next SM_W ->"))
            })
            .collect();
        assert!(!swaps.is_empty(), "no phase-swap mutants generated");
        for m in &swaps {
            // The swap must stay within the transient family.
            let text = &m.description;
            assert!(
                text.ends_with("IS_D") || text.ends_with("IM_D") || text.ends_with("SM_W"),
                "phase swap left the transient family: {text}"
            );
        }
        // No mutant edits a stall row.
        assert!(
            !ms.iter().any(|m| m.description.starts_with("R on IS_D")
                || m.description.starts_with("W on IM_D")
                || m.description.starts_with("W on SM_W")),
            "stall rows are dead table entries and must not be mutated"
        );
    }

    #[test]
    fn atomic_protocols_get_no_transient_mutants() {
        for m in single_mutants(&illinois()) {
            assert!(
                !m.description.starts_with("complete on"),
                "{}",
                m.description
            );
        }
    }

    #[test]
    fn replacement_mutants_never_keep_the_block() {
        for m in single_mutants(&illinois()) {
            for s in m.spec.state_ids() {
                for c in GlobalCtx::ALL {
                    let o = m.spec.outcome(s, ProcEvent::Replace, c);
                    assert!(
                        !m.spec.attrs(o.next).holds_copy,
                        "{}: replacement keeps a copy",
                        m.description
                    );
                }
            }
        }
    }
}
