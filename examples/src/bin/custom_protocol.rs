//! Designing a new protocol against the verifier.
//!
//! Builds a protocol that is *not* in the library — a minimal
//! write-through protocol with two states (`Invalid`, `Valid`) where
//! every store is written through to memory and broadcast as an
//! invalidation — and walks the designer's loop:
//!
//! 1. write the spec with [`SpecBuilder`] (the builder statically
//!    rejects malformed tables);
//! 2. run the symbolic verifier;
//! 3. deliberately re-introduce a classic mistake (forgetting that
//!    snoopers must invalidate on a remote write) and watch the
//!    verifier produce a counterexample.
//!
//! Run: `cargo run -p ccv-examples --bin custom_protocol`

use ccv_core::{verify, Verdict};
use ccv_model::{
    BusOp, DataOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder, StateAttrs,
};

/// A minimal write-through invalidate protocol.
///
/// * Read miss loads `Valid` from memory (memory is always fresh in a
///   write-through design).
/// * Every write — hit or miss — updates memory and invalidates every
///   other copy.
fn write_through() -> ProtocolSpec {
    let mut b = SpecBuilder::new("Write-Through");
    let inv = b.state("Invalid", "Inv", StateAttrs::INVALID);
    let v = b.state("Valid", "V", StateAttrs::SHARED_CLEAN);

    b.on(inv, ProcEvent::Read, Outcome::read_miss(v));
    // A write miss allocates, writes through and invalidates.
    b.on(
        inv,
        ProcEvent::Write,
        Outcome {
            next: v,
            bus: Some(BusOp::ReadX),
            data: DataOp::Write {
                fill: true,
                through: true,
                broadcast: false,
            },
        },
    );
    b.on(inv, ProcEvent::Replace, Outcome::evict_clean(inv));

    b.on(v, ProcEvent::Read, Outcome::read_hit(v));
    // A write hit writes through and invalidates remote copies.
    b.on(
        v,
        ProcEvent::Write,
        Outcome::write_hit_through_invalidate(v),
    );
    b.on(v, ProcEvent::Replace, Outcome::evict_clean(inv)); // always clean

    // Snoop reactions: remote writes kill the local copy.
    b.snoop(v, BusOp::ReadX, SnoopOutcome::to(inv));
    b.snoop(v, BusOp::Upgrade, SnoopOutcome::to(inv));
    b.snoop(v, BusOp::Read, SnoopOutcome::to(v)); // memory supplies

    b.build().expect("well-formed spec")
}

fn main() {
    // --- The correct design --------------------------------------------
    let spec = write_through();
    let report = verify(&spec);
    println!("[1] verifying {} ...", spec.name());
    println!(
        "    verdict: {} ({} essential states, {} visits)",
        report.verdict,
        report.num_essential(),
        report.visits()
    );
    for (i, s) in report.graph.states.iter().enumerate() {
        println!("      s{i}: {}", s.render(&spec));
    }
    assert_eq!(report.verdict, Verdict::Verified);

    // --- The classic mistake --------------------------------------------
    // "Snoopers don't need to do anything on a remote write, memory is
    // up to date anyway" — wrong: their *cached* copy goes stale.
    let v = spec.state_by_name("Valid").unwrap();
    let broken = spec
        .clone()
        .override_snoop(v, BusOp::Upgrade, SnoopOutcome::ignore(v))
        .renamed("Write-Through/no-invalidate");
    let report = verify(&broken);
    println!("\n[2] verifying {} ...", broken.name());
    println!("    verdict: {}", report.verdict);
    assert_eq!(report.verdict, Verdict::Erroneous);
    let finding = &report.reports[0];
    println!("    finding: {}", finding.descriptions.join("; "));
    println!("    counterexample:\n      {}", finding.path);

    println!("\nThe verifier caught the stale-copy bug with a concrete scenario.");
}
