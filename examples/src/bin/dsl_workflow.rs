//! The specification-language workflow the paper's conclusion asks
//! for: describe a protocol in the `.ccv` language, verify it, and
//! export machine-written protocols back to text.
//!
//! The protocol below is a **write-once variant with an eager second
//! state** written directly in the DSL — it is not one of the library
//! constructors, demonstrating that the language is the interface, not
//! a serialization detail.
//!
//! Run: `cargo run -p ccv-examples --bin dsl_workflow`

use ccv_core::{verify, Verdict};
use ccv_model::dsl::{parse_protocol, to_dsl};

const SOURCE: &str = r#"
# A three-state write-back protocol with eager read-exclusive fills:
# like MSI, but a write miss and a read miss both use read-for-ownership
# when the block is uncached, so a private read-modify-write sequence
# costs one bus transaction. (This is E-less MESI with an aggressive
# fill policy, written from scratch in the .ccv language.)
protocol EagerMSI {
    characteristic sharing;

    state Invalid  as I invalid;
    state Shared   as S copy;
    state Modified as M copy owned exclusive silent-write;

    from Invalid {
        # Alone: take the block exclusively right away.
        read when alone  -> Modified via BusRdX fill;
        read when shared -> Shared   via BusRd  fill;
        write -> Modified via BusRdX fill;
        replace -> Invalid;
    }
    from Shared {
        read  -> Shared;
        write -> Modified via BusUpgr;
        replace -> Invalid;
    }
    from Modified {
        read  -> Modified;
        write -> Modified;
        replace -> Invalid writeback;
    }

    snoop Shared {
        BusRd   -> Shared supply;
        BusRdX  -> Invalid;
        BusUpgr -> Invalid;
    }
    snoop Modified {
        BusRd  -> Shared  supply flush;
        BusRdX -> Invalid supply flush;
    }
}
"#;

fn main() {
    println!(
        "[1] parsing the .ccv source ({} lines)...",
        SOURCE.lines().count()
    );
    let spec = match parse_protocol(SOURCE) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("parse error at {e}");
            std::process::exit(1);
        }
    };
    println!(
        "    parsed protocol '{}' with {} states",
        spec.name(),
        spec.num_states()
    );

    println!("\n[2] verifying...");
    let report = verify(&spec);
    println!(
        "    verdict: {} ({} essential states, {} visits)",
        report.verdict,
        report.num_essential(),
        report.visits()
    );
    for (i, s) in report.graph.states.iter().enumerate() {
        println!("      s{i}: {}", s.render(&spec));
    }
    assert_eq!(report.verdict, Verdict::Verified);

    println!("\n[3] exporting back to .ccv (fixpoint check)...");
    let exported = to_dsl(&spec);
    let reparsed = parse_protocol(&exported).expect("exported text must reparse");
    assert_eq!(to_dsl(&reparsed), exported, "export is a fixpoint");
    println!(
        "    export -> parse -> export is stable ({} bytes).",
        exported.len()
    );

    println!("\nA protocol that existed only as text is now formally verified. ∎");
}
