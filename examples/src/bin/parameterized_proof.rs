//! The point of the paper, demonstrated: one symbolic run is a proof
//! for *every* machine size.
//!
//! Classical model checking verifies "Illinois is correct for n = 4
//! caches" and leaves "what about n = 5?" open (§3.2: "It is not clear
//! at first that a protocol correct for a system with n caches would
//! also be correct for a system with n' caches"). The symbolic
//! expansion answers the question once: its essential states describe
//! systems with an arbitrary number of caches.
//!
//! This example (a) runs the symbolic proof once, (b) enumerates the
//! explicit state space for n = 1..=7 and confirms — state by state —
//! that everything reachable at each size is inside the five symbolic
//! families, and (c) shows the explicit space growing without bound
//! while the symbolic description stays put.
//!
//! Run: `cargo run --release -p ccv-examples --bin parameterized_proof`

use ccv_core::{run_expansion, Options};
use ccv_enum::{crosscheck, enumerate, EnumOptions};
use ccv_model::protocols;

fn main() {
    let spec = protocols::illinois();

    // (a) One symbolic run.
    let exp = run_expansion(&spec, &Options::default());
    assert!(exp.is_clean());
    let essential = exp.essential_states();
    println!(
        "symbolic proof: {} visits, {} essential states:",
        exp.visits,
        essential.len()
    );
    for s in &essential {
        println!("  {}", s.render(&spec));
    }

    // (b) + (c) Explicit spaces, covered size by size.
    println!(
        "\n{:<4} {:>16} {:>10} {:>10}",
        "n", "explicit states", "covered", "symbolic"
    );
    for n in 1..=7 {
        let cc = crosscheck(&spec, n, &essential, 1 << 24);
        let distinct = enumerate(&spec, &EnumOptions::new(n).exact()).distinct;
        assert!(cc.complete(), "coverage gap at n={n}");
        println!(
            "{:<4} {:>16} {:>10} {:>10}",
            n,
            distinct,
            format!("{}/{}", cc.covered, cc.total_concrete),
            essential.len()
        );
    }

    println!("\nThe right-hand column never moves: the five essential states are a");
    println!("proof for every machine size, including the ones we did not enumerate.");
}
