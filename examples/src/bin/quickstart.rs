//! Quickstart: verify the Illinois protocol in a dozen lines.
//!
//! Reproduces §4.0 of Pong & Dubois (SPAA'93): starting from
//! `(Invalid⁺)`, the symbolic expansion reaches five essential states
//! and proves the protocol keeps data consistent for **any** number of
//! caches.
//!
//! Run: `cargo run -p ccv-examples --bin quickstart`

use ccv_core::{verify, Verdict};
use ccv_model::protocols;

fn main() {
    // 1. Pick a protocol from the library (or build your own with
    //    ccv_model::SpecBuilder — see the custom_protocol example).
    let spec = protocols::illinois();

    // 2. Verify: symbolic reachability over composite states.
    let report = verify(&spec);

    // 3. Inspect the result.
    println!("protocol : {}", report.protocol);
    println!("verdict  : {}", report.verdict);
    println!(
        "explored : {} state visits -> {} essential states",
        report.visits(),
        report.num_essential()
    );
    println!("\nessential states (valid for ANY number of caches):");
    for (i, s) in report.graph.states.iter().enumerate() {
        println!("  s{i}: {}", s.render(&spec));
    }

    println!("\nglobal transition diagram:");
    for (from, to, labels) in report.graph.grouped_edges() {
        println!("  s{from} --[{}]--> s{to}", labels.join(", "));
    }

    assert_eq!(report.verdict, Verdict::Verified);
    assert_eq!(report.num_essential(), 5, "the paper's Figure 4");
    println!("\nIllinois is coherent for any number of caches. ∎");
}
