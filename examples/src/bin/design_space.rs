//! Design-space exploration: what's forced and what's free in MSI?
//!
//! Generates every single-edit variant of MSI, verifies each, and
//! sorts the survivors: variants whose global diagram is *identical*
//! to MSI's (equivalent implementations), and variants with a
//! genuinely different — but still coherent — behaviour (alternative
//! designs). The rejected edits are the protocol's load-bearing walls.
//!
//! Run: `cargo run --release -p ccv-examples --bin design_space`

use ccv_core::{compare_protocols, verify, Verdict};
use ccv_model::mutate::single_mutants;
use ccv_model::protocols;

fn main() {
    let base = protocols::msi();
    let base_report = verify(&base);
    assert_eq!(base_report.verdict, Verdict::Verified);
    println!(
        "base: {} — {} essential states\n",
        base.name(),
        base_report.num_essential()
    );

    let mutants = single_mutants(&base);
    let mut equivalent = Vec::new();
    let mut alternative = Vec::new();
    let mut rejected = 0usize;

    for m in &mutants {
        let v = verify(&m.spec);
        match v.verdict {
            Verdict::Erroneous => rejected += 1,
            Verdict::Verified => {
                let diff = compare_protocols(&base, &m.spec);
                if diff.skeletons_identical() {
                    equivalent.push((m, v.num_essential()));
                } else {
                    alternative.push((m, v.num_essential(), diff));
                }
            }
            Verdict::Inconclusive => unreachable!("bounded protocols terminate"),
        }
    }

    println!(
        "{} single edits: {} rejected (load-bearing), {} equivalent, {} alternative designs\n",
        mutants.len(),
        rejected,
        equivalent.len(),
        alternative.len()
    );

    println!("equivalent implementations (same behavioural skeleton):");
    for (m, _) in &equivalent {
        println!("  - {}", m.description);
    }

    println!("\nalternative coherent designs (different skeleton):");
    for (m, ess, diff) in &alternative {
        println!(
            "  - {} ({} essential states; {} states only here, {} only in MSI)",
            m.description,
            ess,
            diff.only_b.len(),
            diff.only_a.len()
        );
    }

    println!("\nEvery rejected edit comes with a counterexample (`ccv verify` on the mutant);");
    println!("every surviving edit is a proof-carrying design variant. ∎");
}
