//! Protocol shoot-out: write-invalidate vs write-update on the
//! workloads that motivated each design.
//!
//! Verifies every protocol first (never benchmark an incoherent
//! protocol), then runs the trace simulator on two antagonistic
//! sharing patterns:
//!
//! * **producer–consumer** — one writer, many readers. Write-update
//!   protocols (Firefly, Dragon) shine: readers are refreshed in
//!   place instead of being invalidated and re-missing.
//! * **migratory** — read-modify-write objects passed around.
//!   Write-invalidate protocols (Illinois, Berkeley, MOESI) shine:
//!   updates to a block nobody else reads anymore are wasted traffic.
//!
//! Run: `cargo run --release -p ccv-examples --bin protocol_shootout`

use ccv_core::{verify, Verdict};
use ccv_model::protocols::all_correct;
use ccv_sim::{workload, CostModel, Machine, MachineConfig, WorkloadParams};

fn main() {
    let procs = 4;
    let mut params = WorkloadParams::new(procs);
    params.accesses = 50_000;

    println!("verifying all protocols first...");
    for spec in all_correct() {
        assert_eq!(
            verify(&spec).verdict,
            Verdict::Verified,
            "{} must verify before being benchmarked",
            spec.name()
        );
    }
    println!("all verified.\n");

    for trace in [
        workload::producer_consumer(&params),
        workload::migratory(&params),
    ] {
        println!(
            "== workload: {} ({} accesses, {} procs) ==",
            trace.name,
            trace.len(),
            procs
        );
        println!(
            "{:<12} {:>7} {:>9} {:>10} {:>8} {:>8} {:>8}",
            "protocol", "miss%", "bus/acc", "words/acc", "inval", "update", "c2c"
        );
        let cost = CostModel::default();
        let mut rows: Vec<(String, f64)> = Vec::new();
        for spec in all_correct() {
            let mut m = Machine::new(spec.clone(), MachineConfig::small(procs));
            let r = m.run(&trace);
            assert!(r.is_coherent(), "{}", spec.name());
            println!(
                "{:<12} {:>7.2} {:>9.3} {:>10.3} {:>8} {:>8} {:>8}",
                spec.name(),
                100.0 * r.stats.miss_ratio(),
                r.stats.bus_per_access(),
                cost.words_per_access(&r.stats),
                r.stats.invalidations,
                r.stats.updates_received,
                r.stats.cache_supplies
            );
            rows.push((spec.name().to_string(), cost.words_per_access(&r.stats)));
        }
        rows.sort_by(|a, b| a.1.total_cmp(&b.1));
        println!(
            "-> least bus traffic: {} ({:.3} words/access)\n",
            rows[0].0, rows[0].1
        );
    }

    println!("Update protocols win producer-consumer; invalidate protocols win migratory —");
    println!("the trade-off Archibald & Baer quantified, reproduced on verified specs.");
}
