//! Debugging workflow: from counterexample to fix.
//!
//! Starts from the `Illinois/dirty-no-flush-on-read` mutant — a
//! subtle, *delayed* bug: the Dirty snooper supplies a remote read
//! miss correctly but forgets the simultaneous memory update the
//! Illinois protocol requires. Nothing is wrong immediately; the
//! system only fails several transitions later, when the last fresh
//! copy is silently replaced and a fill is served from the stale
//! memory.
//!
//! The example shows the debugging loop a protocol designer would run:
//!
//! 1. verify → get a minimal symbolic counterexample;
//! 2. read the path to localise the faulty transition;
//! 3. confirm the diagnosis by replaying the scenario on the trace
//!    simulator with a concrete trace derived from the path;
//! 4. apply the fix (restore the flush) and re-verify.
//!
//! Run: `cargo run -p ccv-examples --bin debug_a_protocol`

use ccv_core::{verify, Verdict};
use ccv_model::protocols::{illinois, illinois_dirty_no_flush_on_read};
use ccv_model::{BusOp, SnoopOutcome};
use ccv_sim::{Access, Machine, MachineConfig, Trace};

fn main() {
    // --- 1. Verification finds the bug -----------------------------------
    let broken = illinois_dirty_no_flush_on_read();
    println!("[1] verifying {} ...", broken.name());
    let report = verify(&broken);
    assert_eq!(report.verdict, Verdict::Erroneous);
    let finding = &report.reports[0];
    println!("    verdict : {}", report.verdict);
    println!("    finding : {}", finding.descriptions.join("; "));
    println!("    path    : {}", finding.path);

    // --- 2. Localise -------------------------------------------------------
    println!("\n[2] reading the counterexample:");
    println!("    W_inv  : a write miss leaves one Dirty copy, memory stale;");
    println!("    R_inv  : a remote read miss is served cache-to-cache, but");
    println!("             (the bug) memory is NOT updated -> all copies Shared,");
    println!("             memory still stale;");
    println!("    Z x2   : the Shared copies are clean, so they are replaced");
    println!("             silently -> no cached copy, memory stale;");
    println!("    R_inv  : the next read miss fills from stale memory. BUG.");

    // --- 3. Reproduce on the executable machine ----------------------------
    println!("\n[3] replaying the scenario on the trace simulator:");
    // A tiny direct-mapped cache so reads of block 2 evict block 0.
    let mut m = Machine::new(broken.clone(), MachineConfig::tiny(2));
    let trace = Trace::new(
        "counterexample",
        2,
        vec![
            Access::write(0, 0), // Dirty in P0, memory stale
            Access::read(1, 0),  // served by P0; memory SHOULD be updated
            Access::read(0, 2),  // evicts P0's clean Shared copy of 0
            Access::read(1, 2),  // evicts P1's clean Shared copy of 0
            Access::read(0, 0),  // fills from stale memory -> stale read
        ],
    );
    let r = m.run(&trace);
    assert!(!r.is_coherent(), "the replay must trip the oracle");
    let v = &r.violations[0];
    println!(
        "    oracle violation at access {} ({}): read version {} but latest is {}",
        v.access_index, v.access, v.got, v.expected
    );

    // --- 4. Fix and re-verify ------------------------------------------------
    println!("\n[4] applying the fix (Dirty snooper supplies AND flushes) ...");
    let d = broken.state_by_name("Dirty").unwrap();
    let sh = broken.state_by_name("Shared").unwrap();
    let fixed = broken
        .override_snoop(d, BusOp::Read, SnoopOutcome::supply_and_flush(sh))
        .renamed("Illinois/fixed");
    let report = verify(&fixed);
    println!("    verdict : {}", report.verdict);
    assert_eq!(report.verdict, Verdict::Verified);

    // The fixed protocol is exactly Illinois again.
    let reference = verify(&illinois());
    assert_eq!(report.num_essential(), reference.num_essential());
    println!(
        "\nfixed protocol verifies with the same {} essential states as Illinois. ∎",
        report.num_essential()
    );
}
