//! Shared helpers for the `ccv` integration test suite.
//!
//! The headline helper is [`random_protocol`]: a deterministic
//! generator of *well-formed but otherwise arbitrary* protocol
//! specifications, used by the differential test suites to pit the
//! symbolic engine against the explicit-state engines on inputs nobody
//! hand-tuned. Most generated protocols are incoherent — that is the
//! point: the engines must *agree* on the verdict and on the reachable
//! behaviour, whatever it is.

use ccv_model::{
    BusOp, Characteristic, DataOp, Outcome, ProcEvent, ProtocolSpec, SnoopOutcome, SpecBuilder,
    StateAttrs, StateId,
};

/// A tiny deterministic PRNG (xorshift64*) so the generator depends
/// only on its seed, not on `rand` version details.
pub struct Prng(u64);

impl Prng {
    /// Creates a PRNG from a nonzero-ified seed.
    pub fn new(seed: u64) -> Prng {
        Prng(seed | 1)
    }

    /// Next raw value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform value in `0..n`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    /// Biased coin.
    pub fn chance(&mut self, percent: u32) -> bool {
        (self.next_u64() % 100) < percent as u64
    }
}

/// Generates a well-formed (builder-validated) but otherwise random
/// snooping protocol with 2-5 states. Strong connectivity is *not*
/// required (most random FSMs aren't), so the builder runs with
/// `allow_disconnected`; every other static check is in force, which
/// keeps the generated specs inside the semantics all three engines
/// implement.
pub fn random_protocol(seed: u64) -> ProtocolSpec {
    let mut rng = Prng::new(seed);
    let m = 2 + rng.below(4); // 2..=5 states

    let mut b = SpecBuilder::new(format!("Random-{seed:x}"))
        .characteristic(Characteristic::SharingDetection)
        .allow_disconnected();

    let mut states: Vec<StateId> = Vec::with_capacity(m);
    states.push(b.state("Invalid", "I", StateAttrs::INVALID));
    for i in 1..m {
        let attrs = StateAttrs {
            holds_copy: true,
            owned: rng.chance(40),
            exclusive: rng.chance(40),
            writable_silently: rng.chance(30),
        };
        states.push(b.state(format!("Q{i}"), format!("q{i}"), attrs));
    }
    let invalid = states[0];
    let valid: Vec<StateId> = states[1..].to_vec();

    fn pick(rng: &mut Prng, set: &[StateId]) -> StateId {
        set[rng.below(set.len())]
    }

    // Processor outcomes per (state, event, context-split?).
    for &s in &states {
        let holds = s != invalid;

        // Read.
        fn read_outcome(
            rng: &mut Prng,
            holds: bool,
            states: &[StateId],
            valid: &[StateId],
        ) -> Outcome {
            if holds {
                Outcome {
                    next: pick(rng, states),
                    bus: None,
                    data: DataOp::Read { fill: false },
                }
            } else {
                let bus = if rng.chance(50) {
                    BusOp::Read
                } else {
                    BusOp::ReadX
                };
                Outcome {
                    next: pick(rng, valid),
                    bus: Some(bus),
                    data: DataOp::Read { fill: true },
                }
            }
        }
        if rng.chance(40) {
            let alone = read_outcome(&mut rng, holds, &states, &valid);
            let shared = read_outcome(&mut rng, holds, &states, &valid);
            b.on_sharing(s, ProcEvent::Read, alone, shared);
        } else {
            let o = read_outcome(&mut rng, holds, &states, &valid);
            b.on(s, ProcEvent::Read, o);
        }

        // Write.
        fn write_outcome(rng: &mut Prng, holds: bool, valid: &[StateId]) -> Outcome {
            let next = pick(rng, valid);
            if holds {
                match rng.below(4) {
                    0 => Outcome {
                        next,
                        bus: None,
                        data: DataOp::Write {
                            fill: false,
                            through: rng.chance(30),
                            broadcast: false,
                        },
                    },
                    1 => Outcome {
                        next,
                        bus: Some(BusOp::Upgrade),
                        data: DataOp::Write {
                            fill: false,
                            through: rng.chance(30),
                            broadcast: false,
                        },
                    },
                    2 => Outcome {
                        next,
                        bus: Some(BusOp::Update),
                        data: DataOp::Write {
                            fill: false,
                            through: rng.chance(30),
                            broadcast: true,
                        },
                    },
                    _ => Outcome {
                        next,
                        bus: Some(BusOp::ReadX),
                        data: DataOp::Write {
                            fill: false,
                            through: false,
                            broadcast: false,
                        },
                    },
                }
            } else if rng.chance(70) {
                Outcome {
                    next,
                    bus: Some(BusOp::ReadX),
                    data: DataOp::Write {
                        fill: true,
                        through: rng.chance(20),
                        broadcast: false,
                    },
                }
            } else {
                Outcome {
                    next,
                    bus: Some(BusOp::Update),
                    data: DataOp::Write {
                        fill: true,
                        through: rng.chance(50),
                        broadcast: true,
                    },
                }
            }
        }
        if rng.chance(40) {
            let alone = write_outcome(&mut rng, holds, &valid);
            let shared = write_outcome(&mut rng, holds, &valid);
            b.on_sharing(s, ProcEvent::Write, alone, shared);
        } else {
            let o = write_outcome(&mut rng, holds, &valid);
            b.on(s, ProcEvent::Write, o);
        }

        // Replace.
        let wb = holds && rng.chance(50);
        b.on(
            s,
            ProcEvent::Replace,
            if wb {
                Outcome::evict_writeback(invalid)
            } else {
                Outcome::evict_clean(invalid)
            },
        );
    }

    // Snoop reactions.
    for &s in &valid {
        for bus in BusOp::ALL {
            if rng.chance(50) {
                continue; // keep the default (ignore)
            }
            let next = pick(&mut rng, &states);
            b.snoop(
                s,
                bus,
                SnoopOutcome {
                    next,
                    supplies_data: rng.chance(40),
                    flushes_to_memory: rng.chance(30),
                    receives_update: rng.chance(30),
                },
            );
        }
    }

    b.build().expect("generated spec must pass validation")
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccv_model::GlobalCtx;

    #[test]
    fn generator_is_deterministic() {
        let a = random_protocol(42);
        let b = random_protocol(42);
        assert_eq!(a.num_states(), b.num_states());
        for s in a.state_ids() {
            for e in ProcEvent::ALL {
                for c in GlobalCtx::ALL {
                    assert_eq!(a.outcome(s, e, c), b.outcome(s, e, c));
                }
            }
        }
    }

    #[test]
    fn generator_produces_varied_sizes() {
        let sizes: Vec<usize> = (0..50).map(|s| random_protocol(s).num_states()).collect();
        assert!(sizes.contains(&2));
        assert!(sizes.iter().any(|&n| n >= 4));
    }

    #[test]
    fn hundred_seeds_all_build() {
        for seed in 0..100 {
            let p = random_protocol(seed);
            assert!(p.num_states() >= 2, "seed {seed}");
        }
    }
}
