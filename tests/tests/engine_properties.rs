//! Deeper structural properties of the symbolic engine, checked across
//! the whole protocol library.

use ccv_core::{global_graph, run_expansion, successors, verify_with, Composite, Options, Verdict};
use ccv_model::{protocols, ProcEvent};

#[test]
fn graphs_are_closed_and_rooted_for_every_protocol() {
    for spec in protocols::all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let graph = global_graph(&spec, &exp);
        let n = graph.num_states();
        assert!(n >= 2, "{}", spec.name());

        // Closure: every successor of every essential state is
        // contained in an essential state (Theorem 1 fixpoint).
        for s in &graph.states {
            for t in successors(&spec, s) {
                assert!(
                    graph.states.iter().any(|e| t.to.contained_in(e)),
                    "{}: successor of {} escapes the essential set",
                    spec.name(),
                    s.render(&spec)
                );
            }
        }

        // Rootedness: the initial state's family is covered, and every
        // essential state is reachable from it within the graph.
        let init = Composite::initial(&spec);
        let root = graph
            .states
            .iter()
            .position(|e| init.contained_in(e))
            .unwrap_or_else(|| panic!("{}: initial state uncovered", spec.name()));
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        seen[root] = true;
        while let Some(v) = stack.pop() {
            for e in graph.edges.iter().filter(|e| e.from == v) {
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "{}: some essential state unreachable in the diagram",
            spec.name()
        );
    }
}

#[test]
fn every_essential_state_has_all_three_events_available() {
    // Each essential state must expand under R, W and (for valid
    // classes) Z — the protocol FSM is input-enabled.
    for spec in protocols::all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        for s in exp.essential_states() {
            let succ = successors(&spec, s);
            for e in [ProcEvent::Read, ProcEvent::Write] {
                assert!(
                    succ.iter().any(|t| t.label.event == e),
                    "{}: {} has no {e} successor",
                    spec.name(),
                    s.render(&spec)
                );
            }
        }
    }
}

#[test]
fn expansion_from_an_essential_state_stays_inside_the_family() {
    // Running the worklist from any essential state (instead of the
    // initial state) must not discover anything outside the original
    // essential families — reachability is closed.
    use ccv_core::engine::expand_from;
    for spec in [protocols::illinois(), protocols::dragon()] {
        let exp = run_expansion(&spec, &Options::default());
        let essential: Vec<Composite> = exp.essential_states().into_iter().cloned().collect();
        for start in &essential {
            let sub = expand_from(&spec, start.clone(), &Options::default());
            assert!(sub.is_clean(), "{}", spec.name());
            for s in sub.essential_states() {
                assert!(
                    essential.iter().any(|e| s.contained_in(e)),
                    "{}: expanding from {} reached {} outside the family",
                    spec.name(),
                    start.render(&spec),
                    s.render(&spec)
                );
            }
        }
    }
}

#[test]
fn verdicts_are_stable_across_visit_budgets() {
    // Shrinking the budget may turn a verdict Inconclusive, but never
    // flips Verified <-> Erroneous.
    for spec in protocols::all_correct() {
        for budget in [100usize, 1_000, 100_000] {
            let v = verify_with(&spec, &Options::default().max_visits(budget));
            assert_ne!(
                v.verdict,
                Verdict::Erroneous,
                "{} with budget {budget}",
                spec.name()
            );
        }
    }
    for (spec, _) in protocols::all_buggy() {
        for budget in [1_000usize, 100_000] {
            let v = verify_with(&spec, &Options::default().max_visits(budget));
            assert_ne!(
                v.verdict,
                Verdict::Verified,
                "{} with budget {budget}",
                spec.name()
            );
        }
    }
}

#[test]
fn tiny_budget_is_reported_inconclusive() {
    let v = verify_with(&protocols::illinois(), &Options::default().max_visits(2));
    assert_eq!(v.verdict, Verdict::Inconclusive);
}

#[test]
fn essential_states_are_mutually_incomparable() {
    // Definition 10: essential states are not contained in one another.
    for spec in protocols::all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let ess = exp.essential_states();
        for (i, a) in ess.iter().enumerate() {
            for (j, b) in ess.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.contained_in(b),
                        "{}: {} ⊆ {}",
                        spec.name(),
                        a.render(&spec),
                        b.render(&spec)
                    );
                }
            }
        }
    }
}

#[test]
fn dirty_states_appear_with_stale_memory_only() {
    // Protocol-generic invariant of the library's write-back designs:
    // whenever an owned class is populated in an essential state,
    // memory is stale — except for protocols where owners and memory
    // can agree (never happens in this library's write-back set).
    use ccv_model::MData;
    for name in ["msi", "illinois", "berkeley", "moesi", "dragon"] {
        let spec = protocols::by_name(name).unwrap();
        let exp = run_expansion(&spec, &Options::default());
        for s in exp.essential_states() {
            let has_owner = s.classes().iter().any(|(k, _)| spec.attrs(k.state).owned);
            if has_owner {
                assert_eq!(
                    s.mdata,
                    MData::Obsolete,
                    "{name}: owned copy with fresh memory in {}",
                    s.render(&spec)
                );
            }
        }
    }
}
