//! Deeper structural properties of the symbolic engine, checked across
//! the whole protocol library.

use ccv_core::{
    global_graph, reference_expand, run_expansion, successors, verify_with, Composite, Expansion,
    Options, Pruning, Verdict,
};
use ccv_model::{protocols, ProcEvent};

#[test]
fn graphs_are_closed_and_rooted_for_every_protocol() {
    for spec in protocols::all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let graph = global_graph(&spec, &exp);
        let n = graph.num_states();
        assert!(n >= 2, "{}", spec.name());

        // Closure: every successor of every essential state is
        // contained in an essential state (Theorem 1 fixpoint).
        for s in &graph.states {
            for t in successors(&spec, s) {
                assert!(
                    graph.states.iter().any(|e| t.to.contained_in(e)),
                    "{}: successor of {} escapes the essential set",
                    spec.name(),
                    s.render(&spec)
                );
            }
        }

        // Rootedness: the initial state's family is covered, and every
        // essential state is reachable from it within the graph.
        let init = Composite::initial(&spec);
        let root = graph
            .states
            .iter()
            .position(|e| init.contained_in(e))
            .unwrap_or_else(|| panic!("{}: initial state uncovered", spec.name()));
        let mut seen = vec![false; n];
        let mut stack = vec![root];
        seen[root] = true;
        while let Some(v) = stack.pop() {
            for e in graph.edges.iter().filter(|e| e.from == v) {
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        assert!(
            seen.iter().all(|&s| s),
            "{}: some essential state unreachable in the diagram",
            spec.name()
        );
    }
}

#[test]
fn every_essential_state_has_all_three_events_available() {
    // Each essential state must expand under R, W and (for valid
    // classes) Z — the protocol FSM is input-enabled.
    for spec in protocols::all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        for s in exp.essential_states() {
            let succ = successors(&spec, s);
            for e in [ProcEvent::Read, ProcEvent::Write] {
                assert!(
                    succ.iter().any(|t| t.label.event == e),
                    "{}: {} has no {e} successor",
                    spec.name(),
                    s.render(&spec)
                );
            }
        }
    }
}

#[test]
fn expansion_from_an_essential_state_stays_inside_the_family() {
    // Running the worklist from any essential state (instead of the
    // initial state) must not discover anything outside the original
    // essential families — reachability is closed.
    use ccv_core::engine::expand_from;
    for spec in [protocols::illinois(), protocols::dragon()] {
        let exp = run_expansion(&spec, &Options::default());
        let essential: Vec<Composite> = exp.essential_states().into_iter().cloned().collect();
        for start in &essential {
            let sub = expand_from(&spec, start.clone(), &Options::default());
            assert!(sub.is_clean(), "{}", spec.name());
            for s in sub.essential_states() {
                assert!(
                    essential.iter().any(|e| s.contained_in(e)),
                    "{}: expanding from {} reached {} outside the family",
                    spec.name(),
                    start.render(&spec),
                    s.render(&spec)
                );
            }
        }
    }
}

#[test]
fn verdicts_are_stable_across_visit_budgets() {
    // Shrinking the budget may turn a verdict Inconclusive, but never
    // flips Verified <-> Erroneous.
    for spec in protocols::all_correct() {
        for budget in [100usize, 1_000, 100_000] {
            let v = verify_with(&spec, &Options::default().max_visits(budget));
            assert_ne!(
                v.verdict,
                Verdict::Erroneous,
                "{} with budget {budget}",
                spec.name()
            );
        }
    }
    for (spec, _) in protocols::all_buggy() {
        for budget in [1_000usize, 100_000] {
            let v = verify_with(&spec, &Options::default().max_visits(budget));
            assert_ne!(
                v.verdict,
                Verdict::Verified,
                "{} with budget {budget}",
                spec.name()
            );
        }
    }
}

#[test]
fn tiny_budget_is_reported_inconclusive() {
    let v = verify_with(&protocols::illinois(), &Options::default().max_visits(2));
    assert_eq!(v.verdict, Verdict::Inconclusive);
}

#[test]
fn essential_states_are_mutually_incomparable() {
    // Definition 10: essential states are not contained in one another.
    for spec in protocols::all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let ess = exp.essential_states();
        for (i, a) in ess.iter().enumerate() {
            for (j, b) in ess.iter().enumerate() {
                if i != j {
                    assert!(
                        !a.contained_in(b),
                        "{}: {} ⊆ {}",
                        spec.name(),
                        a.render(&spec),
                        b.render(&spec)
                    );
                }
            }
        }
    }
}

/// Sorted paper-notation renderings of an expansion's essential set.
fn rendered_essential(spec: &ccv_model::ProtocolSpec, exp: &Expansion) -> Vec<String> {
    let mut v: Vec<String> = exp
        .essential_states()
        .iter()
        .map(|c| c.render(spec))
        .collect();
    v.sort();
    v
}

#[test]
fn indexed_engine_matches_the_naive_reference_on_every_protocol() {
    // Differential test of the rearchitected core: the interned,
    // index-backed engine against the retained naive engine
    // (linear scans, allocating successors), on all ten protocols and
    // both pruning modes. Everything observable must coincide.
    for spec in protocols::all_correct() {
        for pruning in [Pruning::Containment, Pruning::Equality] {
            let opts = Options::default().pruning(pruning);
            let fast = run_expansion(&spec, &opts);
            let naive = reference_expand(&spec, &opts);
            let tag = format!("{} ({pruning:?})", spec.name());
            assert_eq!(fast.visits, naive.visits, "{tag}: visits");
            assert_eq!(fast.successors, naive.successors, "{tag}: successors");
            assert_eq!(fast.expanded, naive.expanded, "{tag}: expansions");
            assert_eq!(fast.truncated, naive.truncated, "{tag}: truncation");
            assert_eq!(fast.errors.len(), naive.errors.len(), "{tag}: errors");
            assert_eq!(
                rendered_essential(&spec, &fast),
                rendered_essential(&spec, &naive),
                "{tag}: essential sets diverge"
            );
        }
    }
}

#[test]
fn indexed_engine_matches_the_reference_on_every_buggy_mutant() {
    // Same differential on the mutants: verdicts, error findings and
    // the rendered counterexample paths must be byte-identical (both
    // engines discover states in the same order).
    for (spec, why) in protocols::all_buggy() {
        for pruning in [Pruning::Containment, Pruning::Equality] {
            let opts = Options::default().pruning(pruning);
            let fast = run_expansion(&spec, &opts);
            let naive = reference_expand(&spec, &opts);
            let tag = format!("{} ({pruning:?}, {why})", spec.name());
            assert!(!fast.errors.is_empty(), "{tag}: bug not found");
            assert_eq!(fast.errors.len(), naive.errors.len(), "{tag}: errors");
            for (a, b) in fast.errors.iter().zip(&naive.errors) {
                assert_eq!(a.node, b.node, "{tag}: error node");
                assert_eq!(a.step_errors, b.step_errors, "{tag}: step errors");
                assert_eq!(
                    fast.render_path(&spec, a.node),
                    naive.render_path(&spec, b.node),
                    "{tag}: counterexample paths diverge"
                );
            }
        }
    }
}

#[test]
fn illinois_expansion_is_bit_identical_to_the_reference() {
    // The acceptance pin: 22 expansion steps, 5 essential states, and
    // the full recorded trace byte-identical between the engines.
    let spec = protocols::illinois();
    let opts = Options::default().record_trace(true);
    let fast = run_expansion(&spec, &opts);
    let naive = reference_expand(&spec, &opts);
    assert_eq!(fast.visits, 22);
    assert_eq!(fast.essential.len(), 5);
    assert_eq!(naive.visits, 22);
    assert_eq!(naive.essential.len(), 5);
    assert_eq!(fast.trace.len(), naive.trace.len());
    for (a, b) in fast.trace.iter().zip(&naive.trace) {
        assert_eq!(a.from, b.from);
        assert_eq!(a.label, b.label);
        assert_eq!(a.to, b.to);
        assert_eq!(a.disposition, b.disposition);
    }
}

#[test]
fn error_reports_render_identically_to_the_reference() {
    // Regression for the eager error materialisation fix: the lazily
    // materialised step errors must render exactly the messages the
    // naive engine produces, for every violating trace.
    for (spec, _) in protocols::all_buggy() {
        let v = verify_with(&spec, &Options::default());
        let naive = reference_expand(&spec, &Options::default());
        assert_eq!(v.reports.len(), naive.errors.len(), "{}", spec.name());
        for (r, f) in v.reports.iter().zip(&naive.errors) {
            let mut descriptions: Vec<String> =
                f.violations.iter().map(|x| x.describe(&spec)).collect();
            descriptions.extend(f.step_errors.iter().map(|e| e.to_string()));
            assert_eq!(r.descriptions, descriptions, "{}", spec.name());
            assert_eq!(r.path, naive.render_path(&spec, f.node), "{}", spec.name());
        }
    }
}

#[test]
fn dirty_states_appear_with_stale_memory_only() {
    // Protocol-generic invariant of the library's write-back designs:
    // whenever an owned class is populated in an essential state,
    // memory is stale — except for protocols where owners and memory
    // can agree (never happens in this library's write-back set).
    use ccv_model::MData;
    for name in ["msi", "illinois", "berkeley", "moesi", "dragon"] {
        let spec = protocols::by_name(name).unwrap();
        let exp = run_expansion(&spec, &Options::default());
        for s in exp.essential_states() {
            let has_owner = s.classes().iter().any(|(k, _)| spec.attrs(k.state).owned);
            if has_owner {
                assert_eq!(
                    s.mdata,
                    MData::Obsolete,
                    "{name}: owned copy with fresh memory in {}",
                    s.render(&spec)
                );
            }
        }
    }
}
