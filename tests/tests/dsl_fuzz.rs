//! Fuzz-ish robustness test for the `.ccv` loader: mutated protocol
//! files must always come back as `Ok` or a rendered `Err`, never a
//! panic, and every error message must be non-empty.
//!
//! The generator is a hand-rolled xorshift64 PRNG (no external fuzzing
//! dependency) seeded deterministically, so failures reproduce. The
//! corpus is every checked-in file under `protocols/`, mutated by
//! truncation, byte flips, and line-level splicing — the classes of
//! damage a hand-edited or half-written protocol file actually shows.

use ccv_model::dsl::parse_protocol;

/// Minimal deterministic PRNG: xorshift64 (Marsaglia, 2003).
struct XorShift64(u64);

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        // A zero state would be a fixed point; nudge it off.
        XorShift64(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x
    }

    fn below(&mut self, bound: usize) -> usize {
        (self.next() % bound.max(1) as u64) as usize
    }
}

fn corpus() -> Vec<(String, String)> {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../protocols");
    let mut files: Vec<(String, String)> = std::fs::read_dir(dir)
        .expect("protocols/ corpus directory")
        .filter_map(|e| {
            let e = e.ok()?;
            let name = e.file_name().into_string().ok()?;
            if !name.ends_with(".ccv") {
                return None;
            }
            let text = std::fs::read_to_string(e.path()).ok()?;
            Some((name, text))
        })
        .collect();
    files.sort();
    assert!(!files.is_empty(), "empty corpus");
    files
}

/// One mutation of `text`, chosen and parameterised by `rng`.
fn mutate(text: &str, rng: &mut XorShift64) -> String {
    if text.lines().next().is_none() {
        // A previous mutation emptied the file; nothing left to damage.
        return text.to_string();
    }
    match rng.below(6) {
        // Truncate at an arbitrary byte boundary (half-written file).
        0 => {
            let mut cut = rng.below(text.len() + 1);
            while !text.is_char_boundary(cut) {
                cut -= 1;
            }
            text[..cut].to_string()
        }
        // Flip one byte to an arbitrary printable character.
        1 => {
            let mut bytes = text.as_bytes().to_vec();
            if !bytes.is_empty() {
                let i = rng.below(bytes.len());
                bytes[i] = b' ' + (rng.next() % 95) as u8;
            }
            String::from_utf8_lossy(&bytes).into_owned()
        }
        // Delete a line.
        2 => {
            let lines: Vec<&str> = text.lines().collect();
            let i = rng.below(lines.len());
            lines
                .iter()
                .enumerate()
                .filter(|&(j, _)| j != i)
                .map(|(_, l)| *l)
                .collect::<Vec<_>>()
                .join("\n")
        }
        // Duplicate a line in place.
        3 => {
            let lines: Vec<&str> = text.lines().collect();
            let i = rng.below(lines.len());
            let mut out: Vec<&str> = Vec::with_capacity(lines.len() + 1);
            for (j, l) in lines.iter().enumerate() {
                out.push(l);
                if j == i {
                    out.push(l);
                }
            }
            out.join("\n")
        }
        // Splice a random line from another corpus position.
        4 => {
            let lines: Vec<&str> = text.lines().collect();
            let from = rng.below(lines.len());
            let to = rng.below(lines.len() + 1);
            let mut out = lines.clone();
            let moved = out[from];
            out.insert(to, moved);
            out.join("\n")
        }
        // Swap two arbitrary tokens.
        _ => {
            let tokens: Vec<&str> = text.split_whitespace().collect();
            if tokens.len() < 2 {
                return text.to_string();
            }
            let (a, b) = (rng.below(tokens.len()), rng.below(tokens.len()));
            let mut out = tokens.clone();
            out.swap(a, b);
            out.join(" ")
        }
    }
}

#[test]
fn mutated_protocol_files_never_panic_the_loader() {
    let corpus = corpus();
    let mut rng = XorShift64::new(0x5eed_cafe_f00d_d00d);
    let mut parsed_ok = 0usize;
    let mut rejected = 0usize;
    for round in 0..400 {
        let (name, seed_text) = &corpus[rng.below(corpus.len())];
        // Stack one to three mutations so damage compounds.
        let mut text = seed_text.clone();
        for _ in 0..=rng.below(3) {
            text = mutate(&text, &mut rng);
        }
        match parse_protocol(&text) {
            Ok(_) => parsed_ok += 1,
            Err(e) => {
                let msg = e.to_string();
                assert!(
                    !msg.trim().is_empty(),
                    "{name} round {round}: empty error rendering"
                );
                rejected += 1;
            }
        }
    }
    // The corpus is real, so some mutants must survive (e.g. a
    // duplicated comment line) and many must be rejected; both sides
    // exercised proves the test is not vacuous.
    assert!(parsed_ok > 0, "no mutant parsed — mutations too violent");
    assert!(rejected > 0, "no mutant rejected — mutations too gentle");
}

/// The same mutation corpus, pushed through the daemon's request path
/// instead of the bare loader: every mutant — whether it arrives as a
/// syntactically valid `ccv-request-v1` document wrapping damaged DSL,
/// or as raw garbage on the wire — must come back as a well-formed
/// JSON response document, never a panic and never an empty body.
#[test]
fn mutated_dsl_through_the_server_request_path_never_panics() {
    use ccv_core::api::{ProtocolSource, Request, RunContext};
    use ccv_observe::{CancelToken, Json, SinkHandle};
    use ccv_serve::{ServerConfig, Service};

    let service = Service::new(ServerConfig::loopback());
    let corpus = corpus();
    let mut rng = XorShift64::new(0xfeed_beef_0bad_cafe);
    let mut ok = 0usize;
    let mut rejected = 0usize;
    for round in 0..200 {
        let (name, seed_text) = &corpus[rng.below(corpus.len())];
        let mut text = seed_text.clone();
        for _ in 0..=rng.below(3) {
            text = mutate(&text, &mut rng);
        }
        // Every third round, skip the request envelope entirely and
        // throw the mutant DSL at the parser as if it were the wire
        // line itself — the malformed-request path.
        let wire = if round % 3 == 2 {
            text.replace('\n', " ")
        } else {
            let mut req = Request::verify(ProtocolSource::Dsl(text));
            // A tight budget bounds the runtime of mutants that still
            // parse; the failure-path coverage is the point here.
            req.options.budget = Some(10_000);
            req.to_json().render_compact()
        };
        let ctx = RunContext::new(CancelToken::new(), SinkHandle::disabled());
        let outcome = service.process_text(&wire, &ctx);
        assert!(
            !outcome.body.trim().is_empty(),
            "{name} round {round}: empty response body"
        );
        let doc = Json::parse(&outcome.body)
            .unwrap_or_else(|e| panic!("{name} round {round}: malformed response: {e}"));
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some("ccv-response-v1"),
            "{name} round {round}: wrong schema"
        );
        match outcome.code {
            Some(_) => {
                let err = doc.get("error").expect("error responses carry the error");
                assert!(err.get("code").and_then(Json::as_str).is_some());
                assert!(err
                    .get("message")
                    .and_then(Json::as_str)
                    .is_some_and(|m| !m.trim().is_empty()));
                rejected += 1;
            }
            None => ok += 1,
        }
    }
    // Both sides must be exercised for the sweep to mean anything.
    assert!(ok > 0, "no mutant was served — mutations too violent");
    assert!(
        rejected > 0,
        "no mutant was rejected — mutations too gentle"
    );
}

#[test]
fn pathological_inputs_are_rejected_not_panicked_on() {
    let cases: &[&str] = &[
        "",
        "\0\0\0",
        "protocol",
        "protocol {",
        "protocol X {}",
        "protocol X { state }",
        &"{".repeat(10_000),
        &"state A\n".repeat(5_000),
        "protocol \u{1F980} { state \u{1F980} }",
    ];
    for case in cases {
        if let Err(e) = parse_protocol(case) {
            assert!(!e.to_string().trim().is_empty());
        }
    }
}
