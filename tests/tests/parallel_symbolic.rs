//! Differential suite for the parallel symbolic engine.
//!
//! The fork-join engine (`Options::threads` > 1) promises
//! *bit-identical* output to the sequential worklist for any worker
//! count: workers only expand disjoint batches into private buffers,
//! and the merge replays those buffers in the exact order the
//! sequential loop would have processed them. These tests hold it to
//! that promise across the whole protocol library — correct and buggy
//! protocols, essential states, counterexamples, and the canonical
//! `--essential-out` JSON document — against both the sequential
//! engine and the retained naive oracle (`reference_expand`).

use ccv_core::essential_states_json;
use ccv_core::{
    reference_expand, run_expansion, verify_with, Expansion, Options, Pruning, Verdict,
};
use ccv_model::{protocols, ProtocolSpec};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Every protocol in the library, correct and buggy alike.
fn all_specs() -> Vec<ProtocolSpec> {
    let mut specs = protocols::all_correct();
    specs.extend(protocols::all_buggy().into_iter().map(|(s, _)| s));
    specs
}

fn sorted_renders(spec: &ProtocolSpec, e: &Expansion) -> Vec<String> {
    let mut v: Vec<String> = e
        .essential_states()
        .iter()
        .map(|c| c.render(spec))
        .collect();
    v.sort();
    v
}

/// A byte-stable digest of everything the engine computed: node table,
/// essential list, errors and counterexample paths, in engine order.
fn digest(spec: &ProtocolSpec, e: &Expansion) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for n in &e.nodes {
        writeln!(
            out,
            "node {} parent={:?} pruned={} violations={:?}",
            e.arena.get(n.state).render(spec),
            n.parent,
            n.pruned,
            n.violations
        )
        .unwrap();
    }
    writeln!(out, "essential {:?}", e.essential).unwrap();
    writeln!(
        out,
        "visits={} successors={} expanded={} truncated={}",
        e.visits, e.successors, e.expanded, e.truncated
    )
    .unwrap();
    for err in &e.errors {
        writeln!(
            out,
            "error node={:?} violations={:?} steps={:?} path={}",
            err.node,
            err.violations,
            err.step_errors,
            e.render_path(spec, err.node)
        )
        .unwrap();
    }
    out
}

#[test]
fn every_thread_count_is_bit_identical_to_sequential() {
    for spec in all_specs() {
        for pruning in [Pruning::Containment, Pruning::Equality] {
            let base = run_expansion(&spec, &Options::default().pruning(pruning));
            let want = digest(&spec, &base);
            for t in THREADS {
                let exp = run_expansion(&spec, &Options::default().pruning(pruning).threads(t));
                assert_eq!(
                    digest(&spec, &exp),
                    want,
                    "{} diverges at threads={t} pruning={pruning:?}",
                    spec.name()
                );
            }
        }
    }
}

#[test]
fn every_thread_count_agrees_with_the_naive_oracle() {
    for spec in all_specs() {
        let oracle = reference_expand(&spec, &Options::default());
        for t in THREADS {
            let exp = run_expansion(&spec, &Options::default().threads(t));
            assert_eq!(exp.visits, oracle.visits, "{} t={t}", spec.name());
            assert_eq!(exp.successors, oracle.successors, "{} t={t}", spec.name());
            assert_eq!(
                sorted_renders(&spec, &exp),
                sorted_renders(&spec, &oracle),
                "{} t={t}: essential states diverge from the oracle",
                spec.name()
            );
            assert_eq!(
                exp.errors.len(),
                oracle.errors.len(),
                "{} t={t}",
                spec.name()
            );
        }
    }
}

#[test]
fn counterexample_paths_are_identical_for_every_thread_count() {
    for (spec, why) in protocols::all_buggy() {
        let base = run_expansion(&spec, &Options::default());
        assert!(!base.errors.is_empty(), "{}: {why}", spec.name());
        let paths: Vec<String> = base
            .errors
            .iter()
            .map(|e| base.render_path(&spec, e.node))
            .collect();
        for t in THREADS {
            let exp = run_expansion(&spec, &Options::default().threads(t));
            let got: Vec<String> = exp
                .errors
                .iter()
                .map(|e| exp.render_path(&spec, e.node))
                .collect();
            assert_eq!(got, paths, "{} t={t}", spec.name());
        }
    }
}

#[test]
fn essential_out_json_is_identical_for_every_thread_count() {
    for spec in all_specs() {
        let mut want: Option<String> = None;
        for t in THREADS {
            let opts = Options::default().threads(t);
            let report = verify_with(&spec, &opts);
            let doc = essential_states_json(&spec, &report, Pruning::Containment).render_compact();
            match &want {
                None => want = Some(doc),
                Some(w) => assert_eq!(
                    &doc,
                    w,
                    "{} t={t}: --essential-out document diverges",
                    spec.name()
                ),
            }
        }
    }
}

#[test]
fn verdicts_are_stable_across_thread_counts() {
    for spec in protocols::all_correct() {
        for t in THREADS {
            let report = verify_with(&spec, &Options::default().threads(t));
            assert_eq!(report.verdict, Verdict::Verified, "{} t={t}", spec.name());
        }
    }
    for (spec, why) in protocols::all_buggy() {
        for t in THREADS {
            let report = verify_with(&spec, &Options::default().threads(t));
            assert_eq!(
                report.verdict,
                Verdict::Erroneous,
                "{} t={t} should fail: {why}",
                spec.name()
            );
        }
    }
}
