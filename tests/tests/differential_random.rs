//! Differential testing on randomly generated protocols.
//!
//! [`ccv_tests::random_protocol`] produces well-formed but arbitrary
//! protocols — almost all incoherent. The engines must nevertheless
//! tell one consistent story on every one of them:
//!
//! * **Theorem 1 holds unconditionally**: whatever the verdict, every
//!   explicitly reachable state must be covered by a symbolic
//!   essential state (the theorem is about completeness of the
//!   expansion, not correctness of the protocol);
//! * **no missed bugs**: a violation found by concrete enumeration at
//!   any small size must also be found symbolically;
//! * **no phantom bugs at small sizes is allowed**: if the symbolic
//!   engine says clean, enumeration at every small size must be clean;
//! * the sequential and parallel enumerators must agree exactly;
//! * the engines terminate within their budgets on every input.

use ccv_core::{run_expansion, Options};
use ccv_enum::{crosscheck, enumerate, enumerate_parallel, EnumOptions};
use ccv_tests::random_protocol;

fn seeds() -> std::ops::Range<u64> {
    // The lib crates are optimised even in dev builds (workspace
    // profile overrides), but the glue still runs slower: trim the
    // sweep when debug assertions are on.
    if cfg!(debug_assertions) {
        0..25
    } else {
        0..40
    }
}

fn sym_options() -> Options {
    Options::default().max_visits(100_000)
}

/// A handful of generated protocols have pathological symbolic
/// branching (hundreds of essential states); they terminate but are
/// too slow for a test suite, so seeds whose expansion exceeds the
/// visit budget are skipped — with a cap on how many may be skipped,
/// so a divergence regression still fails loudly.
const MAX_SKIPPED: usize = 8;

#[test]
fn theorem_1_holds_for_random_protocols() {
    let mut skipped = 0usize;
    for seed in seeds() {
        let spec = random_protocol(seed);
        let exp = run_expansion(&spec, &sym_options());
        if exp.truncated {
            skipped += 1;
            assert!(skipped <= MAX_SKIPPED, "too many over-budget seeds");
            continue;
        }
        let essential = exp.essential_states();
        for n in 1..=3 {
            let cc = crosscheck(&spec, n, &essential, 1 << 22);
            assert!(
                cc.complete(),
                "seed {seed} n={n}: {}/{} covered; examples {:?}",
                cc.covered,
                cc.total_concrete,
                cc.uncovered_examples
            );
        }
    }
}

#[test]
fn no_bug_found_concretely_is_missed_symbolically() {
    let mut buggy = 0usize;
    let mut skipped = 0usize;
    for seed in seeds() {
        let spec = random_protocol(seed);
        let sym = run_expansion(&spec, &sym_options());
        if sym.truncated && sym.errors.is_empty() {
            // Over budget without a verdict: skip (bounded above).
            skipped += 1;
            assert!(skipped <= MAX_SKIPPED, "too many over-budget seeds");
            continue;
        }
        let concrete_bug =
            (1..=3).any(|n| !enumerate(&spec, &EnumOptions::new(n)).errors.is_empty());
        if concrete_bug {
            buggy += 1;
            assert!(
                !sym.errors.is_empty(),
                "seed {seed}: concrete violation missed by the symbolic engine"
            );
        }
        if sym.is_clean() {
            // Random protocols are almost never coherent; when one is,
            // enumeration must agree at every small size.
            for n in 1..=3 {
                let r = enumerate(&spec, &EnumOptions::new(n));
                assert!(
                    r.is_clean(),
                    "seed {seed} n={n}: symbolic clean but enumeration found {:?}",
                    r.errors.first()
                );
            }
        }
    }
    // The generator must produce a solid buggy population.
    assert!(buggy >= 10, "only {buggy} buggy seeds — generator too tame");
}

#[test]
fn parallel_enumeration_agrees_on_random_protocols() {
    for seed in seeds().step_by(5) {
        let spec = random_protocol(seed);
        for n in [2usize, 3] {
            let seq = enumerate(&spec, &EnumOptions::new(n).exact());
            let par = enumerate_parallel(&spec, &EnumOptions::new(n).exact(), 3);
            assert_eq!(seq.distinct, par.distinct, "seed {seed} n={n}");
            assert_eq!(seq.visits, par.visits, "seed {seed} n={n}");
            assert_eq!(
                seq.errors.is_empty(),
                par.errors.is_empty(),
                "seed {seed} n={n}"
            );
        }
    }
}

#[test]
fn symbolic_engine_is_deterministic_on_random_protocols() {
    for seed in seeds().step_by(10) {
        let spec = random_protocol(seed);
        let a = run_expansion(&spec, &sym_options());
        let b = run_expansion(&spec, &sym_options());
        assert_eq!(a.visits, b.visits, "seed {seed}");
        assert_eq!(a.essential.len(), b.essential.len(), "seed {seed}");
        assert_eq!(a.errors.len(), b.errors.len(), "seed {seed}");
    }
}

#[test]
fn counting_equivalence_is_sound_on_random_protocols() {
    for seed in seeds().step_by(7) {
        let spec = random_protocol(seed);
        let exact = enumerate(&spec, &EnumOptions::new(3).exact());
        let counting = enumerate(&spec, &EnumOptions::new(3));
        assert!(counting.distinct <= exact.distinct, "seed {seed}");
        assert_eq!(
            exact.errors.is_empty(),
            counting.errors.is_empty(),
            "seed {seed}: counting equivalence changed the verdict"
        );
    }
}

#[test]
fn dsl_roundtrips_random_protocols() {
    // The printer/parser pair must be lossless on arbitrary
    // well-formed specs, not just the curated library.
    use ccv_model::dsl::{parse_protocol, to_dsl};
    use ccv_model::{BusOp, GlobalCtx, ProcEvent};
    for seed in seeds() {
        let spec = random_protocol(seed);
        let text = to_dsl(&spec);
        // Random FSMs are rarely strongly connected, which lowering
        // (deliberately) enforces; only connected ones roundtrip.
        let reparsed = match parse_protocol(&text) {
            Ok(r) => r,
            Err(e) => {
                assert!(
                    e.message.contains("strongly connected"),
                    "seed {seed}: unexpected parse failure: {e}\n{text}"
                );
                continue;
            }
        };
        for s in spec.state_ids() {
            assert_eq!(spec.attrs(s), reparsed.attrs(s), "seed {seed}");
            for e in ProcEvent::ALL {
                for c in GlobalCtx::ALL {
                    assert_eq!(
                        spec.outcome(s, e, c),
                        reparsed.outcome(s, e, c),
                        "seed {seed}: outcome mismatch"
                    );
                }
            }
            for b in BusOp::ALL {
                assert_eq!(spec.snoop(s, b), reparsed.snoop(s, b), "seed {seed}");
            }
        }
    }
}
