//! Budget-split differential tests: a run interrupted by a state
//! budget, checkpointed through the textual format, and resumed must
//! end with exactly the totals of an uninterrupted run — same distinct
//! count, same visit count, same violation set — on both engines and
//! across thread counts.
//!
//! This is the acceptance criterion for the resource-governor PR: the
//! governor stops engines only at expansion granularity (claimed
//! states go back to the frontier), so splitting a search into legs
//! changes nothing observable about its result.

use ccv_enum::{
    enumerate, enumerate_parallel, enumerate_parallel_resumed, enumerate_resumed, Checkpoint,
    EnumOptions, EnumResult, PackedState,
};
use ccv_model::protocols::{dragon, illinois, illinois_missing_writeback};
use ccv_model::ProtocolSpec;

/// Runs leg 1 under `max_states`, round-trips the checkpoint through
/// its textual encoding, and resumes leg 2 with no budget.
fn split_run(spec: &ProtocolSpec, n: usize, budget: usize, threads: usize) -> EnumResult {
    let opts = EnumOptions::new(n)
        .exact()
        .max_states(budget)
        .capture_snapshot(true);
    let leg1 = if threads > 1 {
        enumerate_parallel(spec, &opts, threads)
    } else {
        enumerate(spec, &opts)
    };
    assert!(leg1.truncated, "budget {budget} did not interrupt the run");

    let ckpt =
        Checkpoint::of_result(spec, &opts, &leg1).expect("truncated run yields a checkpoint");
    let mut text = Vec::new();
    ckpt.write_to(&mut text).unwrap();
    let ckpt = Checkpoint::read_from(std::str::from_utf8(&text).unwrap()).unwrap();

    let opts = EnumOptions::new(n).exact();
    ckpt.validate(spec, &opts).unwrap();
    let seed = ckpt.into_seed();
    if threads > 1 {
        enumerate_parallel_resumed(spec, &opts, threads, Some(seed))
    } else {
        enumerate_resumed(spec, &opts, Some(seed))
    }
}

/// Violating states, order-insensitive.
fn error_states(r: &EnumResult) -> Vec<PackedState> {
    let mut v: Vec<PackedState> = r.errors.iter().map(|e| e.state).collect();
    v.sort_by_key(|s| s.0);
    v.dedup();
    v
}

#[test]
fn split_runs_match_uninterrupted_totals_across_engines() {
    for spec in [illinois(), dragon()] {
        let n = 3;
        let full = enumerate(&spec, &EnumOptions::new(n).exact());
        assert!(!full.truncated);
        for threads in [1, 4] {
            for budget in [5, 10] {
                let resumed = split_run(&spec, n, budget, threads);
                assert!(
                    !resumed.truncated,
                    "{} t={threads} budget={budget}: leg 2 still truncated",
                    spec.name()
                );
                assert_eq!(
                    resumed.distinct,
                    full.distinct,
                    "{} t={threads} budget={budget}: distinct",
                    spec.name()
                );
                assert_eq!(
                    resumed.visits,
                    full.visits,
                    "{} t={threads} budget={budget}: visits",
                    spec.name()
                );
                assert_eq!(error_states(&resumed), error_states(&full));
            }
        }
    }
}

#[test]
fn split_runs_find_the_same_violations_in_a_buggy_protocol() {
    let spec = illinois_missing_writeback();
    let n = 3;
    let full = enumerate(&spec, &EnumOptions::new(n).exact());
    assert!(
        !full.errors.is_empty(),
        "the buggy mutant must have reachable violations"
    );
    for threads in [1, 4] {
        let resumed = split_run(&spec, n, 10, threads);
        assert_eq!(resumed.distinct, full.distinct, "t={threads}: distinct");
        assert_eq!(resumed.visits, full.visits, "t={threads}: visits");
        assert_eq!(
            error_states(&resumed),
            error_states(&full),
            "t={threads}: violation sets diverge"
        );
    }
}

#[test]
fn checkpoints_transfer_between_the_sequential_and_parallel_engines() {
    let spec = illinois();
    let n = 4;
    let full = enumerate(&spec, &EnumOptions::new(n).exact());

    // Sequential leg 1 → parallel leg 2, and the reverse.
    let opts = EnumOptions::new(n)
        .exact()
        .max_states(8)
        .capture_snapshot(true);
    let seq_leg = enumerate(&spec, &opts);
    let par_leg = enumerate_parallel(&spec, &opts, 4);
    for (leg, threads) in [(seq_leg, 4), (par_leg, 1)] {
        let ckpt = Checkpoint::of_result(&spec, &opts, &leg).unwrap();
        let seed = Some(ckpt.into_seed());
        let resumed = if threads > 1 {
            enumerate_parallel_resumed(&spec, &EnumOptions::new(n).exact(), threads, seed)
        } else {
            enumerate_resumed(&spec, &EnumOptions::new(n).exact(), seed)
        };
        assert_eq!(resumed.distinct, full.distinct);
        assert_eq!(resumed.visits, full.visits);
        assert!(resumed.errors.is_empty());
    }
}
