//! Corruption fuzz over the persisted artifacts: checkpoint files and
//! spill segments are truncated at every byte boundary and bit-flipped
//! at every byte, and the loaders must hold one contract throughout —
//! a damaged file is cleanly rejected (or quarantined), never panicked
//! on, and never silently accepted as something other than what was
//! written. The only mutation a loader may accept is the identity.

use ccv_enum::{
    enumerate, read_segment, Checkpoint, EnumOptions, PackedState, SpillConfig, SpillVisited,
};
use ccv_model::protocols::illinois;

/// A small, real checkpoint: an early-stopped Illinois enumeration
/// with its resume snapshot captured.
fn small_checkpoint() -> Checkpoint {
    let spec = illinois();
    let opts = EnumOptions::new(3)
        .exact()
        .max_states(10)
        .capture_snapshot(true);
    let r = enumerate(&spec, &opts);
    assert!(r.truncated, "budget must stop the run early");
    Checkpoint::of_result(&spec, &opts, &r).expect("snapshot captured")
}

/// `true` when the parsed checkpoint is byte-for-byte the one written.
fn same_checkpoint(a: &Checkpoint, b: &Checkpoint) -> bool {
    a.protocol == b.protocol
        && a.protocol_hash == b.protocol_hash
        && a.n == b.n
        && a.visits == b.visits
        && a.visited == b.visited
        && a.frontier == b.frontier
}

#[test]
fn checkpoint_loader_rejects_every_truncation() {
    let ckpt = small_checkpoint();
    let mut buf = Vec::new();
    ckpt.write_to(&mut buf).unwrap();
    for cut in 0..=buf.len() {
        let text = String::from_utf8_lossy(&buf[..cut]);
        match Checkpoint::read_from(&text) {
            Err(_) => {}
            Ok(back) => assert!(
                same_checkpoint(&back, &ckpt),
                "truncation at {cut}/{} parsed as a different checkpoint",
                buf.len()
            ),
        }
    }
}

#[test]
fn checkpoint_loader_rejects_every_bit_flip() {
    let ckpt = small_checkpoint();
    let mut buf = Vec::new();
    ckpt.write_to(&mut buf).unwrap();
    for pos in 0..buf.len() {
        for mask in [0x01u8, 0x80] {
            let mut bad = buf.clone();
            bad[pos] ^= mask;
            let text = String::from_utf8_lossy(&bad);
            match Checkpoint::read_from(&text) {
                Err(_) => {}
                Ok(back) => assert!(
                    same_checkpoint(&back, &ckpt),
                    "bit flip {mask:#04x} at byte {pos} was silently accepted"
                ),
            }
        }
    }
}

/// The quarantine path on real files: a sample of damaged on-disk
/// checkpoints must each load as a clean error and leave a `.corrupt`
/// sibling rather than the trusted original.
#[test]
fn damaged_checkpoint_files_are_quarantined() {
    let ckpt = small_checkpoint();
    let mut buf = Vec::new();
    ckpt.write_to(&mut buf).unwrap();
    let dir = std::env::temp_dir().join(format!("ccv-fuzz-ckpt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let step = (buf.len() / 8).max(1);
    for (i, pos) in (0..buf.len()).step_by(step).enumerate() {
        let mut bad = buf.clone();
        bad[pos] ^= 0x04;
        let path = dir.join(format!("damaged-{i}.ccvk"));
        std::fs::write(&path, &bad).unwrap();
        match Checkpoint::load_or_quarantine(&path) {
            Ok(back) => assert!(same_checkpoint(&back, &ckpt), "flip at {pos} accepted"),
            Err(e) => {
                assert!(e.contains("quarantined"), "flip at {pos}: {e}");
                assert!(!path.exists(), "flip at {pos}: original left in place");
                assert!(
                    path.with_extension("ccvk.corrupt").exists(),
                    "flip at {pos}: no quarantine file"
                );
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A real spill segment written by the table itself.
fn spill_segment() -> (std::path::PathBuf, Vec<u8>, Vec<PackedState>) {
    let dir = std::env::temp_dir().join(format!("ccv-fuzz-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut table = SpillVisited::new(&SpillConfig::new(&dir, Some(256)));
    let mut x = 0x243f6a8885a308d3u64;
    for _ in 0..120 {
        x = x.wrapping_mul(0xbf58476d1ce4e5b9).wrapping_add(1);
        table.insert(PackedState(u128::from(x) << 32 | u128::from(x >> 17)));
    }
    assert!(table.segments_written() > 0, "no segment was flushed");
    let path = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "ccvs"))
        .expect("a .ccvs segment exists");
    let bytes = std::fs::read(&path).unwrap();
    let baseline = read_segment(&path).expect("untouched segment reads back");
    (path, bytes, baseline)
}

fn sorted(mut v: Vec<PackedState>) -> Vec<PackedState> {
    v.sort_unstable();
    v
}

#[test]
fn spill_segment_reader_rejects_every_truncation_and_bit_flip() {
    let (path, bytes, baseline) = spill_segment();
    let baseline = sorted(baseline);
    let probe = path.with_file_name("probe.ccvs");
    for cut in 0..=bytes.len() {
        std::fs::write(&probe, &bytes[..cut]).unwrap();
        match read_segment(&probe) {
            Err(_) => {}
            Ok(got) => assert_eq!(
                sorted(got),
                baseline,
                "truncation at {cut}/{} read back as different states",
                bytes.len()
            ),
        }
    }
    for pos in 0..bytes.len() {
        let mut bad = bytes.clone();
        bad[pos] ^= 0x01;
        std::fs::write(&probe, &bad).unwrap();
        match read_segment(&probe) {
            Err(_) => {}
            Ok(got) => assert_eq!(
                sorted(got),
                baseline,
                "bit flip at byte {pos} was silently accepted"
            ),
        }
    }
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}
