//! Runtime certification: the executing machine never leaves the
//! verified state families.
//!
//! Theorem 1 says the symbolic essential states cover everything the
//! FSM model can reach. The trace simulator is an *implementation* of
//! that model (caches, bus arbitration, LRU replacement, version-
//! stamped data); if the implementation is faithful, then at every
//! instant, for every block, the machine's per-block coherence
//! snapshot must lie inside some essential family. This suite runs the
//! monitor after every access of real workloads — a much stronger
//! faithfulness check than the latest-value oracle alone, because it
//! checks the *states*, not just the observable reads.

use ccv_core::{run_expansion, Composite, Options};
use ccv_enum::concrete_covered_by;
use ccv_enum::PackedState;
use ccv_model::{protocols, CData, MData, ProtocolSpec, StateId};
use ccv_sim::{BlockSnapshot, Machine, MachineConfig, Trace, WorkloadParams};

/// Converts a [`BlockSnapshot`] into the packed augmented global state
/// of Definition 4.
fn snapshot_to_packed(snap: &BlockSnapshot) -> PackedState {
    let mut gs = PackedState::INITIAL.with_mdata(if snap.memory_fresh {
        MData::Fresh
    } else {
        MData::Obsolete
    });
    for (i, &(state, fresh)) in snap.caches.iter().enumerate() {
        gs = gs.with_state(i, state);
        let cd = if state == StateId::INVALID {
            CData::NoData
        } else if fresh {
            CData::Fresh
        } else {
            CData::Obsolete
        };
        gs = gs.with_cdata(i, cd);
    }
    gs
}

/// Runs `trace` on `spec`, asserting after every access that every
/// touched block's snapshot is covered by an essential state.
fn certify(spec: &ProtocolSpec, trace: &Trace, cfg: MachineConfig, essential: &[&Composite]) {
    let mut machine = Machine::new(spec.clone(), cfg);
    for (i, &a) in trace.accesses.iter().enumerate() {
        machine.step(a);
        for block in machine.touched_blocks() {
            let snap = machine.snapshot_block(block);
            let gs = snapshot_to_packed(&snap);
            let covered = essential
                .iter()
                .any(|c| concrete_covered_by(spec, gs, machine.procs(), c));
            assert!(
                covered,
                "{}: after access {i} ({a}), block {block} left the verified \
                 families: {}",
                spec.name(),
                gs.render(machine.procs(), spec)
            );
        }
    }
}

fn workload_params(accesses: usize, seed: u64) -> WorkloadParams {
    let mut p = WorkloadParams::new(3);
    p.accesses = accesses;
    p.blocks = 8;
    p.seed = seed;
    p
}

#[test]
fn every_protocol_stays_inside_its_essential_families() {
    for spec in protocols::all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let essential = exp.essential_states();
        let p = workload_params(2_000, 11);
        for trace in ccv_sim::all_workloads(&p) {
            certify(&spec, &trace, MachineConfig::small(3), &essential);
        }
    }
}

#[test]
fn certification_holds_under_eviction_pressure() {
    for spec in protocols::all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let essential = exp.essential_states();
        let p = workload_params(2_000, 13);
        for trace in ccv_sim::all_workloads(&p) {
            certify(&spec, &trace, MachineConfig::tiny(3), &essential);
        }
    }
}

#[test]
fn buggy_machines_escape_the_verified_families() {
    // The converse: a machine running a mutant must, at some point,
    // leave the *correct* protocol's essential families (using the
    // parent protocol's states for comparison).
    use ccv_model::protocols::illinois_missing_invalidation;
    let correct = protocols::illinois();
    let exp = run_expansion(&correct, &Options::default());
    let essential = exp.essential_states();

    let buggy = illinois_missing_invalidation();
    let p = workload_params(5_000, 17);
    let trace = ccv_sim::workload::hot_block(&p);
    let mut machine = Machine::new(buggy.clone(), MachineConfig::small(3));
    let mut escaped = false;
    for &a in &trace.accesses {
        machine.step(a);
        for block in machine.touched_blocks() {
            let gs = snapshot_to_packed(&machine.snapshot_block(block));
            if !essential
                .iter()
                .any(|c| concrete_covered_by(&buggy, gs, machine.procs(), c))
            {
                escaped = true;
            }
        }
        if escaped {
            break;
        }
    }
    assert!(escaped, "the mutant's run never left the verified families");
}

#[test]
fn snapshot_translation_is_faithful() {
    // Spot-check the snapshot → packed-state translation on a scripted
    // scenario.
    use ccv_sim::Access;
    let spec = protocols::illinois();
    let mut m = Machine::new(spec.clone(), MachineConfig::small(2));
    m.step(Access::write(0, 5));
    let gs = snapshot_to_packed(&m.snapshot_block(5));
    let dirty = spec.state_by_name("Dirty").unwrap();
    assert_eq!(gs.state(0), dirty);
    assert_eq!(gs.cdata(0), CData::Fresh);
    assert_eq!(gs.state(1), StateId::INVALID);
    assert_eq!(gs.mdata(), MData::Obsolete);

    m.step(Access::read(1, 5));
    let gs = snapshot_to_packed(&m.snapshot_block(5));
    let shared = spec.state_by_name("Shared").unwrap();
    assert_eq!(gs.state(0), shared);
    assert_eq!(gs.state(1), shared);
    assert_eq!(gs.mdata(), MData::Fresh, "Dirty flushed on the remote read");
}

#[test]
fn untouched_blocks_are_trivially_covered() {
    let spec = protocols::illinois();
    let exp = run_expansion(&spec, &Options::default());
    let essential = exp.essential_states();
    let m = Machine::new(spec.clone(), MachineConfig::small(2));
    // No accesses: (Inv⁺) with fresh memory must be covered (it is the
    // initial essential state).
    let gs = snapshot_to_packed(&m.snapshot_block(0));
    assert!(essential
        .iter()
        .any(|c| concrete_covered_by(&spec, gs, 2, c)));
}
