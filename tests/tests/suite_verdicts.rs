//! Integration tests over the whole protocol suite (E5, E6).

use ccv_core::{verify, verify_with, Batch, Options, Pruning, Verdict};
use ccv_model::protocols::{all_buggy, all_correct, by_name, PROTOCOL_NAMES};

#[test]
fn every_correct_protocol_is_verified() {
    for spec in all_correct() {
        let v = verify(&spec);
        assert_eq!(v.verdict, Verdict::Verified, "{}", spec.name());
        assert!(v.reports.is_empty(), "{}", spec.name());
    }
}

#[test]
fn essential_state_counts_are_stable() {
    // Snapshot of the per-protocol result (the tech-report [12] style
    // table). A change here is a semantic change to a protocol spec or
    // to the engine and must be deliberate.
    let expected = [
        ("write-through", 2),
        ("MSI", 3),
        ("mesi-mem", 5),
        ("Illinois", 5),
        ("Write-Once", 4),
        ("Synapse", 3),
        ("Berkeley", 5),
        ("Firefly", 5),
        ("Dragon", 7),
        ("MOESI", 7),
    ];
    for (name, count) in expected {
        let spec = by_name(name).unwrap();
        let v = verify(&spec);
        assert_eq!(
            v.num_essential(),
            count,
            "{name}: essential-state count changed"
        );
    }
}

#[test]
fn every_buggy_mutant_is_rejected_with_a_counterexample() {
    for (spec, why) in all_buggy() {
        let v = verify(&spec);
        assert_eq!(v.verdict, Verdict::Erroneous, "{} ({why})", spec.name());
        let r = &v.reports[0];
        assert!(!r.descriptions.is_empty());
        assert!(
            r.path.starts_with("(Inv+)"),
            "{}: counterexample must start at the initial state: {}",
            spec.name(),
            r.path
        );
    }
}

#[test]
fn equality_pruning_reaches_the_same_verdicts() {
    // Run the ablation through a batch session — doubles as coverage
    // that batches honour non-default options.
    let mut batch = Batch::with_options(Options::default().pruning(Pruning::Equality));
    for spec in all_correct() {
        assert_eq!(
            batch.summarize(&spec).verdict,
            Verdict::Verified,
            "{}",
            spec.name()
        );
    }
    for (spec, _) in all_buggy() {
        assert_eq!(
            batch.summarize(&spec).verdict,
            Verdict::Erroneous,
            "{}",
            spec.name()
        );
    }
}

#[test]
fn containment_never_visits_more_than_equality() {
    for spec in all_correct() {
        let full = verify(&spec);
        let eq = verify_with(&spec, &Options::default().pruning(Pruning::Equality));
        assert!(
            full.visits() <= eq.visits(),
            "{}: containment {} > equality {}",
            spec.name(),
            full.visits(),
            eq.visits()
        );
        assert!(
            full.num_essential() <= eq.num_essential(),
            "{}",
            spec.name()
        );
    }
}

#[test]
fn registry_names_resolve_and_roundtrip() {
    for name in PROTOCOL_NAMES {
        let spec = by_name(name).unwrap_or_else(|| panic!("{name}"));
        // The verifier must terminate on every registry entry.
        let v = verify(&spec);
        assert!(matches!(v.verdict, Verdict::Verified | Verdict::Erroneous));
    }
}

#[test]
fn buggy_counterexamples_are_short() {
    // Breadth-first exploration should find minimal-ish witnesses;
    // guard against regressions that bury the bug behind dozens of
    // steps.
    for (spec, _) in all_buggy() {
        let v = verify(&spec);
        let len = v.reports[0].path.matches("-->").count();
        assert!(
            len <= 8,
            "{}: counterexample unexpectedly long ({len} steps)",
            spec.name()
        );
    }
}
