//! Regression tests over the exhaustive single-mutation sweep (E10):
//! the verifier must reach a definite verdict on *every* single-edit
//! mutant of every protocol — no panics, no divergence — and the
//! rejected ones must carry counterexamples.

use ccv_core::{Batch, Options, Verdict};
use ccv_model::mutate::single_mutants;
use ccv_model::protocols;

fn opts() -> Options {
    Options::default().max_visits(100_000)
}

#[test]
fn every_illinois_mutant_gets_a_definite_verdict() {
    // The sweep runs through one batch session: every mutant reuses
    // the same engine scratch (successor buffers, index, arena).
    let mut batch = Batch::with_options(opts());
    let base = protocols::illinois();
    for m in single_mutants(&base) {
        let v = batch.verify(&m.spec);
        assert_ne!(
            v.verdict,
            Verdict::Inconclusive,
            "diverged on: {}",
            m.description
        );
        if v.verdict == Verdict::Erroneous {
            assert!(
                !v.reports.is_empty() && v.reports[0].path.contains("-->"),
                "{}: missing counterexample",
                m.description
            );
        }
    }
}

#[test]
fn every_protocols_mutants_terminate() {
    // Summary-only batch runs: verdict and counts are enough here, so
    // each run's arena is recycled into the scratch pool.
    let mut batch = Batch::with_options(opts());
    for spec in protocols::all_correct() {
        for m in single_mutants(&spec) {
            let v = batch.summarize(&m.spec);
            assert_ne!(
                v.verdict,
                Verdict::Inconclusive,
                "{}: diverged on {}",
                spec.name(),
                m.description
            );
        }
    }
}

#[test]
fn every_split_protocol_mutant_terminates_in_both_engines() {
    // The transient mutation classes (phase swaps, completion
    // redirects, snoop edits on pending states) must never crash or
    // diverge either engine — a definite symbolic verdict everywhere,
    // and clean explicit agreement for the benign ones.
    use ccv_enum::{enumerate, EnumOptions};
    let mut batch = Batch::with_options(opts());
    for spec in protocols::all_non_atomic() {
        for m in single_mutants(&spec) {
            let v = batch.verify(&m.spec);
            assert_ne!(
                v.verdict,
                Verdict::Inconclusive,
                "{}: diverged on {}",
                spec.name(),
                m.description
            );
            if v.verdict == Verdict::Erroneous {
                assert!(
                    !v.reports.is_empty() && v.reports[0].path.contains("-->"),
                    "{}: {} missing counterexample",
                    spec.name(),
                    m.description
                );
            } else {
                let r = enumerate(&m.spec, &EnumOptions::new(3));
                assert!(
                    r.is_clean(),
                    "{}: {} symbolically benign but concretely broken: {:?}",
                    spec.name(),
                    m.description,
                    r.errors.first()
                );
            }
        }
    }
}

#[test]
fn dropping_any_writeback_is_always_caught() {
    // The one mutation class that must never be benign: losing a
    // write-back always loses data eventually.
    let mut batch = Batch::with_options(opts());
    for spec in protocols::all_correct() {
        for m in single_mutants(&spec) {
            if m.description.contains("write-back dropped") {
                let v = batch.summarize(&m.spec);
                assert_eq!(
                    v.verdict,
                    Verdict::Erroneous,
                    "{}: {} slipped through",
                    spec.name(),
                    m.description
                );
            }
        }
    }
}

#[test]
fn benign_mutants_pass_the_explicit_engine_too() {
    // Double-check the "benign" verdicts against the enumerative
    // engine at n = 3 — a symbolic false-negative would show up here.
    use ccv_enum::{enumerate, EnumOptions};
    let mut batch = Batch::with_options(opts());
    let base = protocols::illinois();
    for m in single_mutants(&base) {
        let v = batch.summarize(&m.spec);
        if v.verdict == Verdict::Verified {
            let r = enumerate(&m.spec, &EnumOptions::new(3));
            assert!(
                r.is_clean(),
                "{}: symbolically benign but concretely broken: {:?}",
                m.description,
                r.errors.first()
            );
        }
    }
}
