//! Integration tests for the `.ccv` protocol description language:
//! the checked-in protocol files parse, match the library
//! constructors semantically, and verify; malformed inputs fail
//! gracefully (never panic).

use ccv_core::{Batch, Verdict};
use ccv_model::dsl::{parse_protocol, to_dsl};
use ccv_model::{protocols, BusOp, GlobalCtx, ProcEvent};
use proptest::prelude::*;

fn repo_file(name: &str) -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../protocols");
    std::fs::read_to_string(format!("{path}/{name}"))
        .unwrap_or_else(|e| panic!("reading protocols/{name}: {e}"))
}

#[test]
fn checked_in_protocol_files_match_the_library() {
    let pairs = [
        ("msi.ccv", protocols::msi()),
        ("illinois.ccv", protocols::illinois()),
        ("write-once.ccv", protocols::write_once()),
        ("synapse.ccv", protocols::synapse()),
        ("berkeley.ccv", protocols::berkeley()),
        ("firefly.ccv", protocols::firefly()),
        ("dragon.ccv", protocols::dragon()),
        ("moesi.ccv", protocols::moesi()),
    ];
    for (file, reference) in pairs {
        let parsed = parse_protocol(&repo_file(file)).unwrap_or_else(|e| panic!("{file}: {e}"));
        assert_eq!(parsed.num_states(), reference.num_states(), "{file}");
        for s in reference.state_ids() {
            assert_eq!(parsed.state(s).name, reference.state(s).name, "{file}");
            assert_eq!(parsed.attrs(s), reference.attrs(s), "{file}");
            for e in ProcEvent::ALL {
                for c in GlobalCtx::ALL {
                    assert_eq!(
                        parsed.outcome(s, e, c),
                        reference.outcome(s, e, c),
                        "{file}: ({:?}, {e}, {c})",
                        reference.state(s).name
                    );
                }
            }
            for b in BusOp::ALL {
                assert_eq!(parsed.snoop(s, b), reference.snoop(s, b), "{file}");
            }
        }
    }
}

#[test]
fn checked_in_protocol_files_all_verify() {
    // The whole suite runs through one batch verification session.
    let mut batch = Batch::new();
    for file in [
        "msi.ccv",
        "illinois.ccv",
        "write-once.ccv",
        "synapse.ccv",
        "berkeley.ccv",
        "firefly.ccv",
        "dragon.ccv",
        "moesi.ccv",
    ] {
        let spec = parse_protocol(&repo_file(file)).unwrap();
        assert_eq!(batch.summarize(&spec).verdict, Verdict::Verified, "{file}");
    }
}

#[test]
fn export_parse_export_is_a_fixpoint() {
    for spec in protocols::all_correct() {
        let once = to_dsl(&spec);
        let twice = to_dsl(&parse_protocol(&once).unwrap());
        assert_eq!(once, twice, "{}", spec.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn mangled_sources_error_but_never_panic(
        which in 0usize..8,
        cut in 0usize..2000,
        insert in proptest::sample::select(vec![
            "", ";", "}", "{", "->", "when", "via BusRd", "fizz", "#",
        ]),
    ) {
        // Take a valid protocol source, cut it at an arbitrary byte
        // boundary and splice junk in. The parser must return Ok or a
        // positioned error — anything but a panic.
        let spec = protocols::all_correct().swap_remove(which);
        let src = to_dsl(&spec);
        let mut pos = cut.min(src.len());
        while !src.is_char_boundary(pos) {
            pos -= 1;
        }
        let mangled = format!("{}{}{}", &src[..pos], insert, &src[pos..]);
        match parse_protocol(&mangled) {
            Ok(_) => {}
            Err(e) => {
                prop_assert!(e.line >= 1 && e.col >= 1);
                prop_assert!(!e.message.is_empty());
            }
        }
    }

    #[test]
    fn truncated_sources_error_but_never_panic(
        which in 0usize..8,
        keep in 0usize..2000,
    ) {
        let spec = protocols::all_correct().swap_remove(which);
        let src = to_dsl(&spec);
        let mut pos = keep.min(src.len());
        while !src.is_char_boundary(pos) {
            pos -= 1;
        }
        let _ = parse_protocol(&src[..pos]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn arbitrary_ascii_never_panics_the_parser(src in "[ -~\n]{0,300}") {
        // Raw fuzz: any printable-ASCII string must produce Ok or a
        // positioned error, never a panic.
        match parse_protocol(&src) {
            Ok(_) => {}
            Err(e) => prop_assert!(e.line >= 1 && e.col >= 1),
        }
    }

    #[test]
    fn arbitrary_tokens_never_panic_the_parser(
        words in proptest::collection::vec(
            proptest::sample::select(vec![
                "protocol", "state", "from", "snoop", "characteristic",
                "read", "write", "replace", "when", "via", "alone",
                "shared", "owned", "fill", "through", "broadcast",
                "writeback", "supply", "flush", "update", "invalid",
                "copy", "exclusive", "silent-write", "BusRd", "BusRdX",
                "X", "Y", "{", "}", ";", "->", "as",
            ]),
            0..60,
        ),
    ) {
        let src = words.join(" ");
        let _ = parse_protocol(&src);
    }
}
