//! Scripted protocol-behaviour tests on the simulator: each test pins
//! the distinguishing move of one protocol with a hand-written trace.

use ccv_model::protocols;
use ccv_sim::{Access, Machine, MachineConfig, Trace};

fn run(spec: ccv_model::ProtocolSpec, procs: usize, accesses: Vec<Access>) -> ccv_sim::RunReport {
    let mut m = Machine::new(spec, MachineConfig::small(procs));
    m.run(&Trace::new("script", procs, accesses))
}

#[test]
fn write_once_first_write_is_a_bus_write_second_is_silent() {
    // P0 reads (Valid), writes once (through, Reserved), writes again
    // (silent, Dirty).
    let r = run(
        protocols::write_once(),
        2,
        vec![Access::read(0, 1), Access::write(0, 1), Access::write(0, 1)],
    );
    assert!(r.is_coherent());
    assert_eq!(r.stats.through_writes, 1, "exactly the write-once write");
    // Read miss + the write-through upgrade: two bus transactions.
    assert_eq!(r.stats.bus_total(), 2);
}

#[test]
fn synapse_owner_eviction_through_memory() {
    // Synapse: P1's read miss forces P0's dirty copy through memory
    // (abort-flush-retry), not cache-to-cache.
    let r = run(
        protocols::synapse(),
        2,
        vec![Access::write(0, 1), Access::read(1, 1)],
    );
    assert!(r.is_coherent());
    assert_eq!(r.stats.cache_supplies, 0, "Synapse never supplies");
    assert_eq!(r.stats.memory_fills, 2, "both fills via memory");
    assert_eq!(r.stats.writebacks, 1, "the abort flush");
}

#[test]
fn illinois_vs_mesi_mem_clean_supply() {
    // Same trace; Illinois serves the second read cache-to-cache,
    // MESI-Mem from memory.
    let trace = vec![Access::read(0, 1), Access::read(1, 1)];
    let ill = run(protocols::illinois(), 2, trace.clone());
    let mem = run(protocols::mesi_mem(), 2, trace);
    assert!(ill.is_coherent() && mem.is_coherent());
    assert_eq!(ill.stats.cache_supplies, 1);
    assert_eq!(mem.stats.cache_supplies, 0);
    assert_eq!(mem.stats.memory_fills, 2);
}

#[test]
fn berkeley_memory_stays_stale_across_sharing() {
    // P0 writes (owner), P1 reads (supplied by owner, memory NOT
    // updated), then P1 writes (ownership moves). No write-back until
    // eviction.
    let r = run(
        protocols::berkeley(),
        2,
        vec![
            Access::write(0, 1),
            Access::read(1, 1),
            Access::write(1, 1),
            Access::read(0, 1),
        ],
    );
    assert!(r.is_coherent());
    assert_eq!(r.stats.writebacks, 0, "Berkeley defers write-backs");
    assert!(r.stats.cache_supplies >= 2);
}

#[test]
fn moesi_owner_keeps_serving_readers() {
    // P0 writes; P1, P2, P3 read in turn: the owner supplies each time
    // and memory is never refreshed (no flush in MOESI on BusRd).
    let r = run(
        protocols::moesi(),
        4,
        vec![
            Access::write(0, 1),
            Access::read(1, 1),
            Access::read(2, 1),
            Access::read(3, 1),
        ],
    );
    assert!(r.is_coherent());
    assert_eq!(r.stats.writebacks, 0);
    assert_eq!(r.stats.cache_supplies, 3);
    assert_eq!(r.stats.memory_fills, 1, "only the initial write-miss fill");
}

#[test]
fn msi_flushes_on_first_remote_read() {
    let r = run(
        protocols::msi(),
        2,
        vec![Access::write(0, 1), Access::read(1, 1)],
    );
    assert!(r.is_coherent());
    assert_eq!(r.stats.writebacks, 1, "M flushes on BusRd");
}

#[test]
fn firefly_shared_write_updates_everyone_and_memory() {
    let r = run(
        protocols::firefly(),
        3,
        vec![
            Access::read(0, 1),
            Access::read(1, 1),
            Access::read(2, 1),
            Access::write(0, 1), // broadcast + write-through
            Access::read(1, 1),  // hit, fresh
            Access::read(2, 1),  // hit, fresh
        ],
    );
    assert!(r.is_coherent(), "{:?}", r.violations.first());
    assert_eq!(r.stats.updates_received, 2);
    assert_eq!(r.stats.through_writes, 1);
    assert_eq!(r.stats.invalidations, 0);
    // The two post-write reads are hits.
    assert_eq!(r.stats.misses, 3);
}

#[test]
fn dragon_write_miss_with_sharers_takes_ownership() {
    let r = run(
        protocols::dragon(),
        3,
        vec![
            Access::read(0, 1),
            Access::read(1, 1),
            Access::write(2, 1), // write miss: fill + update broadcast
            Access::read(0, 1),  // hit, sees the new value
            Access::read(1, 1),
        ],
    );
    assert!(r.is_coherent(), "{:?}", r.violations.first());
    assert_eq!(r.stats.updates_received, 2);
    assert_eq!(r.stats.invalidations, 0);
    assert_eq!(r.stats.through_writes, 0, "Dragon never writes through");
}

#[test]
fn write_through_never_writes_back_and_always_writes_through() {
    let r = run(
        protocols::write_through(),
        2,
        vec![
            Access::write(0, 1),
            Access::write(0, 1),
            Access::read(1, 1),
            Access::write(1, 1),
        ],
    );
    assert!(r.is_coherent());
    assert_eq!(r.stats.writebacks, 0);
    assert_eq!(r.stats.through_writes, 3);
    assert_eq!(r.stats.invalidations, 1, "P0's copy dies on P1's write");
}

#[test]
fn exclusive_fill_enables_silent_upgrade() {
    // Illinois: lone reader fills V-Ex; its write is then bus-free.
    let r = run(
        protocols::illinois(),
        2,
        vec![Access::read(0, 1), Access::write(0, 1)],
    );
    assert!(r.is_coherent());
    assert_eq!(r.stats.bus_total(), 1, "only the initial BusRd");
    // MSI pays an upgrade for the same sequence.
    let r = run(
        protocols::msi(),
        2,
        vec![Access::read(0, 1), Access::write(0, 1)],
    );
    assert_eq!(r.stats.bus_total(), 2, "BusRd + BusUpgr");
}
