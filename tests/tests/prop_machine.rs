//! Property-based tests for the explicit-state engines and the trace
//! simulator: random traces never read stale values on verified
//! protocols, canonicalisation is permutation-invariant, and the
//! parallel engine agrees with the sequential one everywhere.

use ccv_enum::{
    concrete_covered_by, enumerate, enumerate_parallel, reachable_states, EnumOptions, PackedState,
};
use ccv_model::{protocols, CData, MData, StateId};
use ccv_sim::{Access, AccessKind, Machine, MachineConfig, Trace};
use proptest::prelude::*;

/// A random access over `procs` processors and `blocks` blocks.
fn access_strategy(procs: usize, blocks: u64) -> impl Strategy<Value = Access> {
    (0..procs, 0..blocks, any::<bool>()).prop_map(|(proc, block, w)| Access {
        proc,
        block,
        kind: if w {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
    })
}

fn protocol_strategy() -> impl Strategy<Value = usize> {
    0usize..protocols::all_correct().len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_traces_are_coherent_on_verified_protocols(
        which in protocol_strategy(),
        accesses in proptest::collection::vec(access_strategy(3, 8), 1..400),
        tiny in any::<bool>(),
    ) {
        let spec = protocols::all_correct().swap_remove(which);
        let cfg = if tiny {
            MachineConfig::tiny(3)
        } else {
            MachineConfig::small(3)
        };
        let mut m = Machine::new(spec.clone(), cfg);
        let r = m.run(&Trace::new("prop", 3, accesses));
        prop_assert!(
            r.is_coherent(),
            "{}: {:?}",
            spec.name(),
            r.violations.first()
        );
    }

    #[test]
    fn canonicalisation_is_permutation_invariant(
        states in proptest::collection::vec(0u8..4, 4),
        cdatas in proptest::collection::vec(0u8..3, 4),
        swap in (0usize..4, 0usize..4),
        md in any::<bool>(),
    ) {
        let mut a = PackedState::INITIAL.with_mdata(if md { MData::Obsolete } else { MData::Fresh });
        for i in 0..4 {
            a = a.with_state(i, StateId(states[i]));
            a = a.with_cdata(i, match cdatas[i] { 0 => CData::NoData, 1 => CData::Fresh, _ => CData::Obsolete });
        }
        // Swap two caches.
        let (i, j) = swap;
        let mut b = a;
        b = b.with_state(i, a.state(j)).with_cdata(i, a.cdata(j));
        b = b.with_state(j, a.state(i)).with_cdata(j, a.cdata(i));
        prop_assert_eq!(a.canonical(4), b.canonical(4));
        // Idempotence.
        prop_assert_eq!(a.canonical(4).canonical(4), a.canonical(4));
    }

    #[test]
    fn parallel_agrees_with_sequential(
        which in protocol_strategy(),
        n in 1usize..=4,
        threads in 1usize..=4,
        exact in any::<bool>(),
    ) {
        let spec = protocols::all_correct().swap_remove(which);
        let opts = if exact {
            EnumOptions::new(n).exact()
        } else {
            EnumOptions::new(n)
        };
        let seq = enumerate(&spec, &opts);
        let par = enumerate_parallel(&spec, &opts, threads);
        prop_assert_eq!(seq.distinct, par.distinct);
        prop_assert_eq!(seq.visits, par.visits);
        prop_assert_eq!(seq.errors.is_empty(), par.errors.is_empty());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_reachable_concrete_state_is_symbolically_covered(
        which in protocol_strategy(),
        n in 1usize..=3,
    ) {
        // A randomized slice of the Theorem 1 check.
        let spec = protocols::all_correct().swap_remove(which);
        let exp = ccv_core::run_expansion(&spec, &ccv_core::Options::default());
        let essential = exp.essential_states();
        for gs in reachable_states(&spec, n, 1 << 20) {
            prop_assert!(
                essential.iter().any(|c| concrete_covered_by(&spec, gs, n, c)),
                "{}: {} uncovered",
                spec.name(),
                gs.render(n, &spec)
            );
        }
    }

    #[test]
    fn enumeration_is_deterministic(
        which in protocol_strategy(),
        n in 1usize..=4,
    ) {
        let spec = protocols::all_correct().swap_remove(which);
        let a = enumerate(&spec, &EnumOptions::new(n));
        let b = enumerate(&spec, &EnumOptions::new(n));
        prop_assert_eq!(a.distinct, b.distinct);
        prop_assert_eq!(a.visits, b.visits);
    }

    #[test]
    fn simulator_and_model_checker_verdicts_agree_on_mutants(
        mutant in 0usize..7,
    ) {
        // Every mutant the model checker rejects must be concretely
        // reachable too (enumeration at small n finds a violation).
        let (spec, _) = protocols::all_buggy().swap_remove(mutant);
        let sym = ccv_core::verify(&spec);
        prop_assert_eq!(sym.verdict, ccv_core::Verdict::Erroneous);
        let found = (2..=4).any(|n| !enumerate(&spec, &EnumOptions::new(n)).errors.is_empty());
        prop_assert!(found, "{}", spec.name());
    }
}
