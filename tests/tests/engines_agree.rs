//! Cross-engine agreement tests (E4, E7): the symbolic engine, the
//! sequential enumerator, the parallel enumerator and the trace
//! simulator must tell one consistent story.

use ccv_core::{run_expansion, Options};
use ccv_enum::{crosscheck, enumerate, enumerate_parallel, Dedup, EnumOptions, EnumResult};
use ccv_model::protocols::{all_buggy, all_correct, illinois};
use ccv_model::StateAttrs;

#[test]
fn theorem_1_symbolic_covers_explicit_for_all_protocols() {
    for spec in all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let essential = exp.essential_states();
        for n in 1..=4 {
            let cc = crosscheck(&spec, n, &essential, 1 << 22);
            assert!(
                cc.complete(),
                "{} n={n}: {}/{} covered; examples {:?}",
                spec.name(),
                cc.covered,
                cc.total_concrete,
                cc.uncovered_examples
            );
        }
    }
}

#[test]
fn theorem_1_illinois_up_to_six_caches() {
    let spec = illinois();
    let exp = run_expansion(&spec, &Options::default());
    let essential = exp.essential_states();
    for n in 1..=6 {
        let cc = crosscheck(&spec, n, &essential, 1 << 24);
        assert!(cc.complete(), "n={n}");
    }
}

#[test]
fn enumeration_verdicts_match_symbolic_verdicts() {
    // Any protocol the symbolic engine rejects must show a concrete
    // violation at some small n, and vice versa: clean symbolic
    // verdicts imply clean enumerations.
    for spec in all_correct() {
        for n in 1..=4 {
            let r = enumerate(&spec, &EnumOptions::new(n));
            assert!(
                r.is_clean(),
                "{} n={n}: {:?}",
                spec.name(),
                r.errors.first()
            );
        }
    }
    for (spec, why) in all_buggy() {
        let found = (2..=4).any(|n| !enumerate(&spec, &EnumOptions::new(n)).errors.is_empty());
        assert!(
            found,
            "{} ({why}): no concrete violation for n<=4",
            spec.name()
        );
    }
}

#[test]
fn parallel_enumeration_agrees_with_sequential_everywhere() {
    for spec in all_correct() {
        for n in [2usize, 4] {
            let seq = enumerate(&spec, &EnumOptions::new(n).exact());
            let par = enumerate_parallel(&spec, &EnumOptions::new(n).exact(), 4);
            assert_eq!(seq.distinct, par.distinct, "{} n={n}", spec.name());
            assert_eq!(seq.visits, par.visits, "{} n={n}", spec.name());
        }
    }
}

#[test]
fn counting_equivalence_is_a_pure_compression() {
    // Counting-equivalence dedup must not change the verdict, only
    // the state count.
    for spec in all_correct() {
        let exact = enumerate(&spec, &EnumOptions::new(3).exact());
        let counting = enumerate(&spec, &EnumOptions::new(3));
        assert!(exact.is_clean() && counting.is_clean(), "{}", spec.name());
        assert!(counting.distinct <= exact.distinct, "{}", spec.name());
    }
    for (spec, _) in all_buggy() {
        let exact = enumerate(&spec, &EnumOptions::new(3).exact());
        let counting = enumerate(&spec, &EnumOptions::new(3));
        assert_eq!(
            exact.errors.is_empty(),
            counting.errors.is_empty(),
            "{}",
            spec.name()
        );
    }
}

/// The violation multiset of a run, order-normalised: the two engines
/// record identical (state, descriptions) entries, only in different
/// orders.
fn violation_set(r: &EnumResult) -> Vec<(u128, Vec<String>)> {
    let mut v: Vec<(u128, Vec<String>)> = r
        .errors
        .iter()
        .map(|e| {
            let mut d = e.descriptions.clone();
            d.sort();
            (e.state.0, d)
        })
        .collect();
    v.sort();
    v
}

#[test]
fn differential_matrix_work_stealing_equals_sequential() {
    // The PR 2 acceptance matrix: every bundled protocol (correct and
    // buggy) × machine size × dedup mode × thread count. The
    // work-stealing engine must reproduce the sequential engine's
    // distinct count, visit count and violation set exactly — any
    // scheduling-dependent divergence is a bug in the claim protocol
    // or the termination detection.
    let mut specs: Vec<_> = all_correct();
    specs.extend(all_buggy().into_iter().map(|(s, _)| s));
    for spec in &specs {
        for n in [2usize, 3, 4] {
            for dedup in [Dedup::Exact, Dedup::Counting] {
                let opts = EnumOptions::new(n).dedup(dedup);
                let seq = enumerate(spec, &opts);
                let seq_violations = violation_set(&seq);
                for threads in [1usize, 2, 4, 8] {
                    let par = enumerate_parallel(spec, &opts, threads);
                    let tag = format!("{} n={n} {dedup:?} t={threads}", spec.name());
                    assert_eq!(par.distinct, seq.distinct, "{tag}: distinct");
                    assert_eq!(par.visits, seq.visits, "{tag}: visits");
                    assert_eq!(violation_set(&par), seq_violations, "{tag}: violations");
                }
            }
        }
    }
}

#[test]
fn initial_state_violation_honors_stop_at_first_error() {
    // A protocol whose *initial* global state is already erroneous:
    // every cache "holds" an exclusive owned copy while invalid. The
    // builder (rightly) refuses such specs, so the test overrides the
    // attributes after validation. With stop_at_first_error the
    // sequential engine must report the initial violation and stop
    // without expanding anything — it used to explore the full space
    // after recording the initial error.
    let spec = illinois();
    let invalid = spec.invalid();
    let spec = spec.override_attrs(
        invalid,
        StateAttrs {
            holds_copy: true,
            owned: true,
            exclusive: true,
            writable_silently: false,
        },
    );

    let stopping = EnumOptions::new(3).stop_at_first_error(true);
    let r = enumerate(&spec, &stopping);
    assert_eq!(r.errors.len(), 1, "exactly the initial violation");
    assert_eq!(r.errors[0].state.0, 0, "the all-invalid initial state");
    assert_eq!(r.distinct, 1, "nothing explored beyond the initial state");
    assert_eq!(r.visits, 0, "no successors generated");
    assert!(!r.truncated);

    // The work-stealing engine stops the same way...
    let par = enumerate_parallel(&spec, &stopping, 4);
    assert_eq!(par.errors.len(), 1);
    assert_eq!(par.distinct, 1);
    assert_eq!(par.visits, 0);

    // ...and without the flag both engines explore past the broken
    // initial state and agree.
    let exploring = EnumOptions::new(3);
    let seq_full = enumerate(&spec, &exploring);
    let par_full = enumerate_parallel(&spec, &exploring, 4);
    assert!(seq_full.errors.len() > 1);
    assert_eq!(seq_full.distinct, par_full.distinct);
    assert_eq!(seq_full.visits, par_full.visits);
    assert_eq!(violation_set(&seq_full), violation_set(&par_full));
}

#[test]
fn explicit_state_space_grows_with_n_symbolic_does_not() {
    let spec = illinois();
    let mut last = 0usize;
    for n in 1..=6 {
        let d = enumerate(&spec, &EnumOptions::new(n).exact()).distinct;
        assert!(d > last, "explicit space must grow: n={n}");
        last = d;
    }
    let sym = run_expansion(&spec, &Options::default());
    assert_eq!(
        sym.essential.len(),
        5,
        "symbolic stays at 5 regardless of n"
    );
}
