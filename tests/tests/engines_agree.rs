//! Cross-engine agreement tests (E4, E7): the symbolic engine, the
//! sequential enumerator, the parallel enumerator and the trace
//! simulator must tell one consistent story.

use ccv_core::{run_expansion, Options};
use ccv_enum::{crosscheck, enumerate, enumerate_parallel, EnumOptions};
use ccv_model::protocols::{all_buggy, all_correct, illinois};

#[test]
fn theorem_1_symbolic_covers_explicit_for_all_protocols() {
    for spec in all_correct() {
        let exp = run_expansion(&spec, &Options::default());
        let essential = exp.essential_states();
        for n in 1..=4 {
            let cc = crosscheck(&spec, n, &essential, 1 << 22);
            assert!(
                cc.complete(),
                "{} n={n}: {}/{} covered; examples {:?}",
                spec.name(),
                cc.covered,
                cc.total_concrete,
                cc.uncovered_examples
            );
        }
    }
}

#[test]
fn theorem_1_illinois_up_to_six_caches() {
    let spec = illinois();
    let exp = run_expansion(&spec, &Options::default());
    let essential = exp.essential_states();
    for n in 1..=6 {
        let cc = crosscheck(&spec, n, &essential, 1 << 24);
        assert!(cc.complete(), "n={n}");
    }
}

#[test]
fn enumeration_verdicts_match_symbolic_verdicts() {
    // Any protocol the symbolic engine rejects must show a concrete
    // violation at some small n, and vice versa: clean symbolic
    // verdicts imply clean enumerations.
    for spec in all_correct() {
        for n in 1..=4 {
            let r = enumerate(&spec, &EnumOptions::new(n));
            assert!(
                r.is_clean(),
                "{} n={n}: {:?}",
                spec.name(),
                r.errors.first()
            );
        }
    }
    for (spec, why) in all_buggy() {
        let found = (2..=4).any(|n| !enumerate(&spec, &EnumOptions::new(n)).errors.is_empty());
        assert!(
            found,
            "{} ({why}): no concrete violation for n<=4",
            spec.name()
        );
    }
}

#[test]
fn parallel_enumeration_agrees_with_sequential_everywhere() {
    for spec in all_correct() {
        for n in [2usize, 4] {
            let seq = enumerate(&spec, &EnumOptions::new(n).exact());
            let par = enumerate_parallel(&spec, &EnumOptions::new(n).exact(), 4);
            assert_eq!(seq.distinct, par.distinct, "{} n={n}", spec.name());
            assert_eq!(seq.visits, par.visits, "{} n={n}", spec.name());
        }
    }
}

#[test]
fn counting_equivalence_is_a_pure_compression() {
    // Counting-equivalence dedup must not change the verdict, only
    // the state count.
    for spec in all_correct() {
        let exact = enumerate(&spec, &EnumOptions::new(3).exact());
        let counting = enumerate(&spec, &EnumOptions::new(3));
        assert!(exact.is_clean() && counting.is_clean(), "{}", spec.name());
        assert!(counting.distinct <= exact.distinct, "{}", spec.name());
    }
    for (spec, _) in all_buggy() {
        let exact = enumerate(&spec, &EnumOptions::new(3).exact());
        let counting = enumerate(&spec, &EnumOptions::new(3));
        assert_eq!(
            exact.errors.is_empty(),
            counting.errors.is_empty(),
            "{}",
            spec.name()
        );
    }
}

#[test]
fn explicit_state_space_grows_with_n_symbolic_does_not() {
    let spec = illinois();
    let mut last = 0usize;
    for n in 1..=6 {
        let d = enumerate(&spec, &EnumOptions::new(n).exact()).distinct;
        assert!(d > last, "explicit space must grow: n={n}");
        last = d;
    }
    let sym = run_expansion(&spec, &Options::default());
    assert_eq!(
        sym.essential.len(),
        5,
        "symbolic stays at 5 regardless of n"
    );
}
