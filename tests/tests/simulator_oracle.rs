//! Integration tests for the trace simulator against the latest-value
//! oracle (E8): verified protocols never read stale data on any
//! workload or cache geometry; every seeded mutant trips the oracle
//! somewhere.

use ccv_model::protocols::{all_buggy, all_correct};
use ccv_sim::{all_workloads, Machine, MachineConfig, WorkloadParams};

fn params(procs: usize, accesses: usize, seed: u64) -> WorkloadParams {
    let mut p = WorkloadParams::new(procs);
    p.accesses = accesses;
    p.seed = seed;
    p
}

#[test]
fn verified_protocols_are_coherent_on_every_workload() {
    let p = params(4, 20_000, 1);
    for spec in all_correct() {
        for trace in all_workloads(&p) {
            let mut m = Machine::new(spec.clone(), MachineConfig::small(4));
            let r = m.run(&trace);
            assert!(
                r.is_coherent(),
                "{} on {}: {:?}",
                spec.name(),
                trace.name,
                r.violations.first()
            );
        }
    }
}

#[test]
fn verified_protocols_survive_eviction_pressure() {
    // Tiny caches force constant replacement — the write-back paths
    // get exercised hard.
    let p = params(4, 20_000, 2);
    for spec in all_correct() {
        for trace in all_workloads(&p) {
            let mut m = Machine::new(spec.clone(), MachineConfig::tiny(4));
            let r = m.run(&trace);
            assert!(
                r.is_coherent(),
                "{} on {} (tiny): {:?}",
                spec.name(),
                trace.name,
                r.violations.first()
            );
            assert!(r.stats.evictions > 0, "tiny cache must evict");
        }
    }
}

#[test]
fn every_mutant_trips_the_oracle_somewhere() {
    let p = params(4, 20_000, 3);
    // Split-transaction mutants are excluded: their bugs live in the
    // request/completion interleaving, which an atomic-bus simulator
    // cannot execute (Machine rejects transient specs outright).
    for (spec, why) in all_buggy().into_iter().filter(|(s, _)| !s.has_transients()) {
        let mut tripped = false;
        'outer: for cfg in [MachineConfig::small(4), MachineConfig::tiny(4)] {
            for trace in all_workloads(&p) {
                let mut m = Machine::new(spec.clone(), cfg.clone());
                if !m.run(&trace).is_coherent() {
                    tripped = true;
                    break 'outer;
                }
            }
        }
        assert!(tripped, "{} ({why}) escaped the oracle", spec.name());
    }
}

#[test]
fn single_processor_runs_of_correct_protocols_never_violate() {
    // With one processor there is no sharing; correct protocols must
    // be trivially coherent — a no-false-alarms check on the oracle.
    let p = params(1, 10_000, 4);
    for spec in all_correct() {
        for trace in all_workloads(&p) {
            let mut m = Machine::new(spec.clone(), MachineConfig::tiny(1));
            let r = m.run(&trace);
            assert!(
                r.is_coherent(),
                "{} on {} with 1 proc: oracle false alarm {:?}",
                spec.name(),
                trace.name,
                r.violations.first()
            );
        }
    }
}

#[test]
fn lost_writeback_bugs_fail_even_on_one_processor() {
    // A protocol that drops dirty data on replacement is wrong even
    // without sharing: evict, then re-read stale memory. The
    // sharing-only mutants, by contrast, are coherent at n = 1.
    use ccv_model::protocols::{illinois_missing_invalidation, illinois_missing_writeback};
    let p = params(1, 10_000, 4);
    let trips = |spec: ccv_model::ProtocolSpec| {
        all_workloads(&p).iter().any(|trace| {
            let mut m = Machine::new(spec.clone(), MachineConfig::tiny(1));
            !m.run(trace).is_coherent()
        })
    };
    assert!(trips(illinois_missing_writeback()));
    assert!(!trips(illinois_missing_invalidation()));
}

#[test]
fn stats_are_internally_consistent() {
    let p = params(4, 20_000, 5);
    for spec in all_correct() {
        for trace in all_workloads(&p) {
            let mut m = Machine::new(spec.clone(), MachineConfig::small(4));
            let r = m.run(&trace);
            let s = &r.stats;
            assert_eq!(s.accesses, trace.len(), "{}", spec.name());
            assert_eq!(s.reads + s.writes, s.accesses, "{}", spec.name());
            assert_eq!(s.hits + s.misses, s.accesses, "{}", spec.name());
            // Each miss is a fill: served by a cache or by memory.
            assert!(
                s.cache_supplies + s.memory_fills >= s.misses,
                "{} on {}: fills {} + {} < misses {}",
                spec.name(),
                trace.name,
                s.cache_supplies,
                s.memory_fills,
                s.misses
            );
        }
    }
}

#[test]
fn invalidate_protocols_never_update_and_vice_versa() {
    let p = params(4, 10_000, 6);
    for spec in all_correct() {
        let trace = ccv_sim::workload::producer_consumer(&p);
        let mut m = Machine::new(spec.clone(), MachineConfig::small(4));
        let r = m.run(&trace);
        match spec.name() {
            "Firefly" | "Dragon" => {
                assert_eq!(r.stats.invalidations, 0, "{}", spec.name());
                assert!(r.stats.updates_received > 0, "{}", spec.name());
            }
            _ => {
                assert_eq!(r.stats.updates_received, 0, "{}", spec.name());
                assert!(r.stats.invalidations > 0, "{}", spec.name());
            }
        }
    }
}

#[test]
fn runs_are_reproducible() {
    let p = params(4, 5_000, 7);
    let spec = ccv_model::protocols::illinois();
    let trace = ccv_sim::workload::uniform(&p);
    let run = |cfg| {
        let mut m = Machine::new(spec.clone(), cfg);
        let r = m.run(&trace);
        (r.stats.bus_total(), r.stats.misses, r.violations.len())
    };
    assert_eq!(run(MachineConfig::small(4)), run(MachineConfig::small(4)));
}
