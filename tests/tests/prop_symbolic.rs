//! Property-based tests for the symbolic core: operator algebra,
//! covering/containment laws, and the paper's monotonicity lemma.

use ccv_core::{successors, ClassKey, Composite, FVal, Interval, Rep};
use ccv_model::{protocols, CData, MData, StateId};
use proptest::prelude::*;

fn rep_strategy() -> impl Strategy<Value = Rep> {
    prop_oneof![
        Just(Rep::Zero),
        Just(Rep::One),
        Just(Rep::Plus),
        Just(Rep::Star),
    ]
}

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0u32..5, any::<bool>()).prop_map(|(lo, unbounded)| Interval { lo, unbounded })
}

fn fval_strategy() -> impl Strategy<Value = FVal> {
    prop_oneof![Just(FVal::V1), Just(FVal::V2), Just(FVal::V3)]
}

fn mdata_strategy() -> impl Strategy<Value = MData> {
    prop_oneof![Just(MData::Fresh), Just(MData::Obsolete)]
}

/// A random (possibly infeasible) composite state over the Illinois
/// state alphabet (4 states).
fn composite_strategy() -> impl Strategy<Value = Composite> {
    let n = 4usize;
    (
        proptest::collection::vec(rep_strategy(), n),
        fval_strategy(),
        mdata_strategy(),
    )
        .prop_map(move |(reps, f, mdata)| {
            let classes = reps
                .into_iter()
                .enumerate()
                .map(|(i, r)| {
                    let key = if i == 0 {
                        ClassKey::invalid()
                    } else {
                        ClassKey::fresh(StateId(i as u8))
                    };
                    (key, r)
                })
                .collect();
            Composite::new(classes, mdata, f)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    // --- Operator algebra --------------------------------------------------

    #[test]
    fn rep_le_is_reflexive(r in rep_strategy()) {
        prop_assert!(r.le(r));
    }

    #[test]
    fn rep_le_is_antisymmetric(a in rep_strategy(), b in rep_strategy()) {
        if a.le(b) && b.le(a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn rep_le_is_transitive(a in rep_strategy(), b in rep_strategy(), c in rep_strategy()) {
        if a.le(b) && b.le(c) {
            prop_assert!(a.le(c));
        }
    }

    #[test]
    fn rep_le_agrees_with_interval_subset(a in rep_strategy(), b in rep_strategy()) {
        prop_assert_eq!(a.le(b), a.interval().subset_of(b.interval()));
    }

    #[test]
    fn interval_subset_is_a_partial_order(
        a in interval_strategy(),
        b in interval_strategy(),
        c in interval_strategy(),
    ) {
        prop_assert!(a.subset_of(a));
        if a.subset_of(b) && b.subset_of(a) {
            prop_assert_eq!(a, b);
        }
        if a.subset_of(b) && b.subset_of(c) {
            prop_assert!(a.subset_of(c));
        }
    }

    #[test]
    fn interval_merge_is_commutative_and_monotone(
        a in interval_strategy(),
        b in interval_strategy(),
        c in interval_strategy(),
    ) {
        prop_assert_eq!(a.merge(b), b.merge(a));
        if a.subset_of(c) {
            // merging the same amount preserves inclusion
            prop_assert!(a.merge(b).subset_of(c.merge(b)));
        }
    }

    #[test]
    fn plus_one_then_minus_one_roundtrips(a in interval_strategy()) {
        prop_assert_eq!(a.plus_one().minus_one(), a);
    }

    #[test]
    fn coarsening_only_widens(a in interval_strategy()) {
        // to_rep over-approximates: the original interval is a subset
        // of the operator's denotation.
        prop_assert!(a.subset_of(a.to_rep().interval()));
    }

    #[test]
    fn conditioning_refines(a in interval_strategy()) {
        if let Some(ne) = a.condition_nonempty() {
            prop_assert!(ne.subset_of(a));
            prop_assert!(ne.certainly_nonempty());
        }
        if let Some(e) = a.condition_empty() {
            prop_assert!(e.subset_of(a));
            prop_assert!(e.is_zero());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    // --- Covering and containment -------------------------------------------

    #[test]
    fn covering_is_reflexive_and_transitive(
        a in composite_strategy(),
        b in composite_strategy(),
        c in composite_strategy(),
    ) {
        prop_assert!(a.covered_by(&a));
        if a.covered_by(&b) && b.covered_by(&c) {
            prop_assert!(a.covered_by(&c));
        }
        if a.contained_in(&b) && b.contained_in(&c) {
            prop_assert!(a.contained_in(&c));
        }
    }

    #[test]
    fn containment_implies_covering_and_equal_f(
        a in composite_strategy(),
        b in composite_strategy(),
    ) {
        if a.contained_in(&b) {
            prop_assert!(a.covered_by(&b));
            prop_assert_eq!(a.f, b.f);
            prop_assert_eq!(a.mdata, b.mdata);
        }
    }

    #[test]
    fn covering_is_antisymmetric_on_canonical_states(
        a in composite_strategy(),
        b in composite_strategy(),
    ) {
        if a.covered_by(&b) && b.covered_by(&a) {
            // Canonical representation is unique per family.
            prop_assert_eq!(a.classes(), b.classes());
        }
    }
}

/// Strengthens every class operator of `s` according to `choices`,
/// producing a state structurally covered by `s` with the same `F`.
fn strengthen(s: &Composite, choices: &[u8]) -> Composite {
    let classes = s
        .classes()
        .iter()
        .zip(choices.iter().cycle())
        .map(|(&(k, r), &c)| {
            let weakened = match (r, c % 4) {
                (Rep::Star, 0) => Rep::Zero,
                (Rep::Star, 1) => Rep::One,
                (Rep::Star, 2) => Rep::Plus,
                (Rep::Plus, 0) | (Rep::Plus, 1) => Rep::One,
                (other, _) => other,
            };
            (k, weakened)
        })
        .collect();
    Composite::new(classes, s.mdata, s.f)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Lemma 2 / Corollary 2: monotonicity of expansion --------------------

    #[test]
    fn expansion_is_monotonic_under_containment(
        state_idx in 0usize..5,
        choices in proptest::collection::vec(any::<u8>(), 1..6),
    ) {
        // Take a reachable essential state S2 of Illinois, strengthen
        // it into S1 ⊆ S2, and check that every successor of S1 is
        // contained in some successor of S2.
        let spec = protocols::illinois();
        let exp = ccv_core::run_expansion(&spec, &ccv_core::Options::default());
        let essential = exp.essential_states();
        let s2 = essential[state_idx % essential.len()].clone();
        let s1 = strengthen(&s2, &choices);
        prop_assume!(s1.contained_in(&s2));

        let succ2 = successors(&spec, &s2);
        for t1 in successors(&spec, &s1) {
            prop_assert!(
                succ2.iter().any(|t2| t1.to.contained_in(&t2.to)),
                "successor {:?} of {:?} not covered",
                t1.to.render(&spec),
                s1.render(&spec)
            );
        }
    }

    #[test]
    fn successors_of_permissible_reachable_states_are_valid_composites(
        state_idx in 0usize..5,
    ) {
        let spec = protocols::illinois();
        let exp = ccv_core::run_expansion(&spec, &ccv_core::Options::default());
        let essential = exp.essential_states();
        let s = essential[state_idx % essential.len()].clone();
        for t in successors(&spec, &s) {
            // Canonical form invariants.
            for (k, r) in t.to.classes() {
                prop_assert!(*r != Rep::Zero);
                if k.state.is_invalid() {
                    prop_assert_eq!(k.cdata, CData::NoData);
                }
            }
            // Errors never occur on a verified protocol's reachable set.
            prop_assert!(t.errors.is_empty());
        }
    }
}
