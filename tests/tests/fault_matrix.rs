//! Fault-injection matrix: every governed fault site crossed with
//! every fault kind, driven through the daemon's request path and a
//! live loopback server. The contract under test is the robustness
//! invariant from the fault subsystem's design: an injected fault may
//! only ever end one of three ways —
//!
//!   1. a clean, well-formed error response,
//!   2. a degraded-but-correct run (same verdict, warning attached),
//!   3. a successful retry once the fault window is exhausted.
//!
//! Never a panic escaping the engine, never a hang (every read in
//! this file carries a timeout), and never a silently wrong verdict.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use ccv_core::api::{ProtocolSource, Request, RunContext};
use ccv_model::protocols::illinois;
use ccv_observe::Json;
use ccv_serve::{Server, ServerConfig, Service};

/// Every site the subsystem defines, including ones that cannot fire
/// during an in-process `Service::process` call (the socket and
/// client sites): those must behave as plain no-ops — the verdict is
/// the proof that an armed-but-unreached site costs nothing.
const SITES: &[&str] = &[
    "checkpoint.write",
    "spill.flush",
    "spill.probe",
    "enum.worker",
    "cache.write",
    "serve.accept",
    "serve.response",
    "client.connect",
    "client.read",
    "cli.out",
];

const KINDS: &[&str] = &["io", "torn", "panic", "disconnect", "slow"];

fn enumerate_request(fault_plan: Option<String>) -> Request {
    let mut req = Request::enumerate(ProtocolSource::Spec(illinois()), 3);
    req.options.threads = 1;
    req.options.fault_plan = fault_plan;
    req
}

/// The full site × kind grid through the service. Spill and
/// checkpoint sites stay dormant here (no spill dir, no checkpoint
/// capture), so their cells double as the zero-cost-when-unreached
/// check; `enum.worker` is the live cell.
#[test]
fn request_fault_plan_matrix_never_panics_and_never_lies() {
    let service = Service::new(ServerConfig::loopback());
    let ctx = RunContext::default();

    let baseline = service.process(&enumerate_request(None), &ctx);
    assert!(
        baseline.code.is_none(),
        "baseline failed: {}",
        baseline.body
    );
    let baseline_doc = Json::parse(&baseline.body).expect("baseline body parses");
    let baseline_distinct = baseline_doc
        .get("distinct_states")
        .and_then(Json::as_u64)
        .expect("baseline has distinct_states");

    for site in SITES {
        for kind in KINDS {
            let plan = format!("{site}:{kind}@1");
            let out = service.process(&enumerate_request(Some(plan.clone())), &ctx);
            let doc = Json::parse(&out.body)
                .unwrap_or_else(|e| panic!("{plan}: malformed response: {e}"));
            assert!(!out.cached, "{plan}: fault runs must never come from cache");
            if out.code.is_some() {
                // Clean error: structured, with a code and a message.
                let err = doc
                    .get("error")
                    .unwrap_or_else(|| panic!("{plan}: error body"));
                assert!(err.get("code").and_then(Json::as_str).is_some(), "{plan}");
                assert!(
                    err.get("message").and_then(Json::as_str).is_some(),
                    "{plan}"
                );
                continue;
            }
            if doc.get("stop").is_some() {
                // Contained early stop (an injected worker panic):
                // truncated and reported, not unwound.
                continue;
            }
            // Anything that ran to completion must agree with the
            // un-faulted baseline exactly.
            assert_eq!(
                doc.get("distinct_states").and_then(Json::as_u64),
                Some(baseline_distinct),
                "{plan}: verdict changed under an injected fault"
            );
        }
    }
}

/// An active spill table under an injected flush fault, driven end to
/// end through the request path: the run degrades to memory, warns,
/// and still produces the exact state count.
#[test]
fn spill_fault_through_the_request_path_degrades_but_stays_exact() {
    let mut config = ServerConfig::loopback();
    config.allow_files = true;
    let service = Service::new(config);
    let ctx = RunContext::default();

    // Exact pruning (no symmetry dedup) on both sides: the spill
    // table is an exact visited set, so only this mode is comparable.
    let mut base_req = enumerate_request(None);
    base_req.options.exact = true;
    let baseline = service.process(&base_req, &ctx);
    let baseline_distinct = Json::parse(&baseline.body)
        .expect("baseline parses")
        .get("distinct_states")
        .and_then(Json::as_u64)
        .expect("baseline distinct");

    let dir = std::env::temp_dir().join(format!("ccv-matrix-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut req = enumerate_request(Some("spill.flush:io".into()));
    req.options.exact = true;
    req.options.spill_dir = Some(dir.to_string_lossy().into_owned());
    req.options.spill_threshold = Some(256);
    let out = service.process(&req, &ctx);
    assert!(
        out.code.is_none(),
        "spill fault must degrade, not fail: {}",
        out.body
    );
    let doc = Json::parse(&out.body).expect("response parses");
    assert_eq!(
        doc.get("distinct_states").and_then(Json::as_u64),
        Some(baseline_distinct),
        "degraded spill run changed the verdict"
    );
    let warned = matches!(
        doc.get("warnings"),
        Some(Json::Arr(w)) if w.iter().any(|x| x.as_str().is_some_and(|s| s.contains("spill degraded")))
    );
    assert!(
        warned,
        "degradation must surface as a warning: {}",
        out.body
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// One NDJSON exchange against a live server, bounded so an injected
/// fault can never hang the test: connect, send, scan for the
/// response envelope. `Err` is a dropped connection.
fn exchange(addr: std::net::SocketAddr, line: &str) -> Result<Json, String> {
    let stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))
        .map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(20)))
        .expect("read timeout");
    let mut out = stream.try_clone().map_err(|e| format!("clone: {e}"))?;
    out.write_all(line.as_bytes())
        .and_then(|_| out.write_all(b"\n"))
        .and_then(|_| out.flush())
        .map_err(|e| format!("send: {e}"))?;
    for event in BufReader::new(stream).lines() {
        let event = event.map_err(|e| format!("read: {e}"))?;
        let Ok(doc) = Json::parse(&event) else {
            continue;
        };
        if doc.get("ev").and_then(Json::as_str) == Some("response") {
            return doc
                .get("body")
                .cloned()
                .ok_or_else(|| "envelope without body".into());
        }
    }
    Err("connection closed before a response arrived".into())
}

/// Socket-layer faults against a live loopback server: dropped
/// accepts, dropped and slowed responses. A bounded retry loop must
/// reach the true verdict in every configuration, and the server must
/// survive to serve the next cell.
#[test]
fn socket_fault_matrix_is_survivable_by_retry() {
    let plans = [
        "serve.accept:disconnect@1",
        "serve.accept:io@1",
        "serve.response:disconnect@1",
        "serve.response:io@1",
        "serve.response:slow@1",
        "serve.accept:disconnect@1,serve.response:disconnect@1",
    ];
    let line = Request::verify(ProtocolSource::Spec(illinois()))
        .to_json()
        .render_compact();
    for plan in plans {
        let mut config = ServerConfig::loopback();
        config.fault = ccv_observe::FaultHandle::from_spec(plan).expect("plan parses");
        let server = Server::bind(config).expect("bind loopback");
        let handle = server.spawn();

        let mut verdict = None;
        let mut drops = 0usize;
        for _attempt in 0..5 {
            match exchange(handle.addr(), &line) {
                Ok(body) => {
                    verdict = body.get("verdict").and_then(Json::as_str).map(String::from);
                    break;
                }
                Err(_) => drops += 1,
            }
        }
        assert_eq!(
            verdict.as_deref(),
            Some("VERIFIED"),
            "{plan}: retries never reached the true verdict ({drops} drops)"
        );
        // The fault window is spent: the server keeps serving cleanly.
        let again = exchange(handle.addr(), &line).expect("post-fault request");
        assert_eq!(
            again.get("verdict").and_then(Json::as_str),
            Some("VERIFIED"),
            "{plan}: server degraded after its fault window"
        );
        handle.shutdown();
    }
}
