//! Integration tests pinning the paper's published results (E1–E3).
//!
//! These are the exactness tests of the reproduction: §4.0 and Fig. 4
//! of Pong & Dubois (SPAA'93) for the Illinois protocol, and the
//! Appendix A.2 transition listing.

use ccv_core::{global_graph, run_expansion, verify, FVal, Options, Verdict};
use ccv_model::{protocols, CData, MData};

/// The five essential states of Fig. 4, in our renderer's notation.
const FIG4_STATES: [&str; 5] = [
    "(Inv+)",
    "(V-Ex, Inv*)",
    "(Dirty, Inv*)",
    "(Shared+, Inv*)",
    "(Shared, Inv+)",
];

#[test]
fn illinois_verifies_with_exactly_five_essential_states() {
    let spec = protocols::illinois();
    let report = verify(&spec);
    assert_eq!(report.verdict, Verdict::Verified);
    let rendered: Vec<String> = report
        .graph
        .states
        .iter()
        .map(|s| s.render(&spec))
        .collect();
    assert_eq!(rendered.len(), 5);
    for s in FIG4_STATES {
        assert!(
            rendered.contains(&s.to_string()),
            "missing {s}: {rendered:?}"
        );
    }
}

#[test]
fn figure_4_context_variable_table_matches() {
    // state -> (F, mdata, all valid classes fresh)
    let expected: [(&str, FVal, MData); 5] = [
        ("(Inv+)", FVal::V1, MData::Fresh),
        ("(V-Ex, Inv*)", FVal::V2, MData::Fresh),
        ("(Dirty, Inv*)", FVal::V2, MData::Obsolete),
        ("(Shared+, Inv*)", FVal::V3, MData::Fresh),
        ("(Shared, Inv+)", FVal::V2, MData::Fresh),
    ];
    let spec = protocols::illinois();
    let exp = run_expansion(&spec, &Options::default());
    for (name, f, mdata) in expected {
        let state = exp
            .essential_states()
            .into_iter()
            .find(|c| c.render(&spec) == name)
            .unwrap_or_else(|| panic!("{name} not found"))
            .clone();
        assert_eq!(state.f, f, "{name}: F");
        assert_eq!(state.mdata, mdata, "{name}: mdata");
        for (k, _) in state.classes() {
            if !k.state.is_invalid() {
                assert_eq!(k.cdata, CData::Fresh, "{name}: every copy fresh");
            }
        }
    }
}

#[test]
fn appendix_a2_transitions_all_reproduced() {
    // The paper's 22-step expansion listing, with N-step superscripts
    // folded into plain labels.
    let paper: &[(&str, &str, &str)] = &[
        ("(Inv+)", "W_inv", "(Dirty, Inv*)"),
        ("(Inv+)", "R_inv", "(V-Ex, Inv*)"),
        ("(Dirty, Inv*)", "Z_dirty", "(Inv+)"),
        ("(Dirty, Inv*)", "R_dirty", "(Dirty, Inv*)"),
        ("(Dirty, Inv*)", "W_dirty", "(Dirty, Inv*)"),
        ("(Dirty, Inv*)", "W_inv", "(Dirty, Inv*)"),
        ("(Dirty, Inv*)", "R_inv", "(Shared+, Inv*)"),
        ("(V-Ex, Inv*)", "Z_v-ex", "(Inv+)"),
        ("(V-Ex, Inv*)", "R_v-ex", "(V-Ex, Inv*)"),
        ("(V-Ex, Inv*)", "W_v-ex", "(Dirty, Inv*)"),
        ("(V-Ex, Inv*)", "W_inv", "(Dirty, Inv*)"),
        ("(V-Ex, Inv*)", "R_inv", "(Shared+, Inv*)"),
        ("(Shared+, Inv*)", "Z_shared", "(Shared, Inv+)"),
        ("(Shared+, Inv*)", "W_shared", "(Dirty, Inv*)"),
        ("(Shared+, Inv*)", "R_shared", "(Shared+, Inv*)"),
        ("(Shared+, Inv*)", "W_inv", "(Dirty, Inv*)"),
        ("(Shared+, Inv*)", "R_inv", "(Shared+, Inv*)"),
        ("(Shared, Inv+)", "Z_shared", "(Inv+)"),
        ("(Shared, Inv+)", "W_shared", "(Dirty, Inv*)"),
        ("(Shared, Inv+)", "R_shared", "(Shared, Inv+)"),
        ("(Shared, Inv+)", "W_inv", "(Dirty, Inv+)"),
        ("(Shared, Inv+)", "R_inv", "(Shared+, Inv*)"),
    ];
    assert_eq!(paper.len(), 22, "the paper reports 22 state visits");

    let spec = protocols::illinois();
    let opts = Options::default().record_trace(true);
    let exp = run_expansion(&spec, &opts);
    let graph = global_graph(&spec, &exp);
    let render = |i: usize| graph.states[i].render(&spec);

    for (from, label, to) in paper {
        let in_graph = graph
            .edges
            .iter()
            .any(|e| render(e.from) == *from && e.label == *label && render(e.to) == *to);
        let in_trace = exp.trace.iter().any(|v| {
            v.from.render(&spec) == *from
                && v.label.render(&spec) == *label
                && v.to.render(&spec) == *to
        });
        assert!(
            in_graph || in_trace,
            "paper transition {from} --{label}--> {to} not reproduced"
        );
    }
}

#[test]
fn our_visit_count_matches_the_papers_22() {
    // A visit is one rule firing; a firing whose interval arithmetic
    // splits into several successor categories still counts once,
    // matching the paper's N-step-rule bookkeeping exactly.
    let spec = protocols::illinois();
    let exp = run_expansion(&spec, &Options::default());
    assert_eq!(
        exp.visits, 22,
        "visit count drifted from the paper's Appendix A.2"
    );
    assert!(
        exp.successors >= exp.visits,
        "category splits can only add successors"
    );
}

#[test]
fn expansion_is_deterministic() {
    let spec = protocols::illinois();
    let a = run_expansion(&spec, &Options::default());
    let b = run_expansion(&spec, &Options::default());
    assert_eq!(a.visits, b.visits);
    assert_eq!(
        a.essential_states()
            .iter()
            .map(|c| c.render(&spec))
            .collect::<Vec<_>>(),
        b.essential_states()
            .iter()
            .map(|c| c.render(&spec))
            .collect::<Vec<_>>()
    );
}

#[test]
fn the_global_diagram_is_strongly_connected() {
    // Definition 1 requires the local FSM to be strongly connected;
    // the induced global diagram over essential states inherits the
    // property for every shipped protocol.
    for spec in protocols::all_correct() {
        let report = verify(&spec);
        let n = report.graph.num_states();
        let edges: Vec<(usize, usize)> =
            report.graph.edges.iter().map(|e| (e.from, e.to)).collect();
        assert!(
            ccv_model::strongly_connected(n, &edges),
            "{}: global diagram not strongly connected",
            spec.name()
        );
    }
}
