//! Integration tests for the observability layer: a [`Metrics`]
//! collector attached to each engine must report the paper's published
//! numbers through the exported JSON.
//!
//! The JSON schema is documented in `docs/metrics-schema.md`; these
//! tests pin the parts CI greps for.

use std::sync::Arc;

use ccv_core::Session;
use ccv_enum::{attach_crosscheck, enumerate, enumerate_parallel, EnumOptions};
use ccv_model::protocols;
use ccv_observe::{Counter, EventSink, Gauge, Json, Metrics, Phase, SinkHandle};
use ccv_sim::{workload, Machine, MachineConfig, WorkloadParams};

fn sink_of(metrics: &Arc<Metrics>) -> Arc<dyn EventSink> {
    metrics.clone()
}

#[test]
fn symbolic_metrics_json_reports_the_papers_numbers() {
    let metrics = Arc::new(Metrics::new());
    let report = Session::new(protocols::illinois())
        .sink(sink_of(&metrics))
        .verify();
    assert_eq!(report.visits(), 22);

    let json_text = metrics.snapshot().to_json().render();
    let doc = Json::parse(&json_text).expect("exported metrics are valid JSON");

    // The paper's §4.0 numbers for Illinois: 22 visits, 5 essential states.
    let counters = doc.get("counters").expect("counters object");
    assert_eq!(counters.get("visits").and_then(Json::as_u64), Some(22));
    let gauges = doc.get("gauges").expect("gauges object");
    assert_eq!(
        gauges.get("essential_states").and_then(Json::as_u64),
        Some(5)
    );

    // Pruning happened and was counted.
    assert!(counters.get("prunes").and_then(Json::as_u64).unwrap() > 0);
    assert!(
        counters
            .get("containment_checks")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    // Per-phase wall time: each verification phase appears with a
    // numeric wall_ms.
    let phases = doc.get("phases").expect("phases object");
    for phase in ["expand", "graph", "check"] {
        if let Some(p) = phases.get(phase) {
            assert!(p.get("wall_ms").and_then(Json::as_f64).unwrap() >= 0.0);
        }
    }
    // Expand always takes measurable time.
    assert!(phases.get("expand").is_some(), "{json_text}");
}

#[test]
fn enumeration_metrics_agree_with_the_result() {
    let metrics = Arc::new(Metrics::new());
    let spec = protocols::illinois();
    let opts = EnumOptions::new(3).exact().sink(sink_of(&metrics));
    let r = enumerate(&spec, &opts);
    assert_eq!(r.distinct, 14);

    let snap = metrics.snapshot();
    assert_eq!(snap.counter(Counter::Visits), r.visits as u64);
    assert_eq!(snap.gauge(Gauge::DistinctStates), Some(14));
    assert!(snap.gauge(Gauge::Levels).unwrap() > 1);
    // Every visit is either a dedup hit or a miss.
    assert_eq!(
        snap.counter(Counter::DedupHits) + snap.counter(Counter::DedupMisses),
        r.visits as u64
    );
    assert!(snap.phase_nanos(Phase::Enumerate) > 0);

    let doc = Json::parse(&snap.to_json().render()).unwrap();
    let levels = doc.get("frontier_levels").expect("frontier level sizes");
    match levels {
        Json::Arr(sizes) => assert!(!sizes.is_empty()),
        other => panic!("frontier_levels should be an array, got {other:?}"),
    }
}

#[test]
fn parallel_enumeration_reports_workers_and_the_same_totals() {
    let seq = enumerate(&protocols::illinois(), &EnumOptions::new(3).exact());

    let metrics = Arc::new(Metrics::new());
    let opts = EnumOptions::new(3).exact().sink(sink_of(&metrics));
    let par = enumerate_parallel(&protocols::illinois(), &opts, 4);
    assert_eq!(par.distinct, seq.distinct);

    let snap = metrics.snapshot();
    assert_eq!(snap.counter(Counter::Visits), seq.visits as u64);
    assert_eq!(snap.gauge(Gauge::Threads), Some(4));
    assert_eq!(snap.gauge(Gauge::DistinctStates), Some(seq.distinct as u64));

    let doc = Json::parse(&snap.to_json().render()).unwrap();
    let workers = doc.get("workers").expect("per-worker claim counts");
    match workers {
        Json::Obj(entries) => {
            assert!(!entries.is_empty());
            let total: u64 = entries.iter().map(|(_, v)| v.as_u64().unwrap()).sum();
            // Workers claim every state except the initial one.
            assert_eq!(total, seq.distinct as u64 - 1);
        }
        other => panic!("workers should be an object, got {other:?}"),
    }
}

#[test]
fn crosscheck_metrics_report_class_sizes() {
    let metrics = Arc::new(Metrics::new());
    let session = Session::new(protocols::illinois());
    let mut report = session.verify();
    let cc = attach_crosscheck(
        session.spec(),
        &mut report,
        3,
        1 << 20,
        false,
        &SinkHandle::new(sink_of(&metrics)),
    );
    assert!(cc.complete());
    assert!(report.crosscheck.as_ref().unwrap().complete);

    let snap = metrics.snapshot();
    assert!(snap.counter(Counter::OracleChecks) > 0);
    assert!(snap.phase_nanos(Phase::Crosscheck) > 0);
    let doc = Json::parse(&snap.to_json().render()).unwrap();
    let hist = doc
        .get("histograms")
        .and_then(|h| h.get("class_size"))
        .expect("class_size histogram");
    // One observation per essential state.
    assert_eq!(hist.get("count").and_then(Json::as_u64), Some(5));
}

#[test]
fn simulator_metrics_count_accesses_and_bus_traffic() {
    let metrics = Arc::new(Metrics::new());
    let spec = protocols::illinois();
    let mut params = WorkloadParams::new(2);
    params.accesses = 2_000;
    let trace = workload::hot_block(&params);
    let mut machine = Machine::new(
        spec,
        MachineConfig::small(2).sink(SinkHandle::new(sink_of(&metrics))),
    );
    let report = machine.run(&trace);
    assert!(report.is_coherent());

    let snap = metrics.snapshot();
    assert_eq!(snap.counter(Counter::Accesses), 2_000);
    assert_eq!(
        snap.counter(Counter::OracleChecks),
        report.stats.reads as u64
    );
    assert_eq!(
        snap.counter(Counter::BusOps),
        report.stats.bus_ops.iter().sum::<usize>() as u64
    );
    assert!(snap.phase_nanos(Phase::Simulate) > 0);

    let doc = Json::parse(&snap.to_json().render()).unwrap();
    let bus = doc.get("bus_ops").expect("per-op bus traffic");
    match bus {
        Json::Obj(entries) => assert!(!entries.is_empty()),
        other => panic!("bus_ops should be an object, got {other:?}"),
    }
}

#[test]
fn one_metrics_collector_can_span_engines() {
    // Thread the same collector through the symbolic run and the
    // crosscheck: phase timings accumulate side by side.
    let metrics = Arc::new(Metrics::new());
    let session = Session::new(protocols::illinois()).sink(sink_of(&metrics));
    let mut report = session.verify();
    attach_crosscheck(
        session.spec(),
        &mut report,
        3,
        1 << 20,
        false,
        &SinkHandle::new(sink_of(&metrics)),
    );

    let snap = metrics.snapshot();
    assert_eq!(snap.counter(Counter::Visits), 22);
    assert!(snap.phase_nanos(Phase::Expand) > 0);
    assert!(snap.phase_nanos(Phase::Crosscheck) > 0);
    let json = snap.to_json().render();
    assert!(json.contains("\"expand\""), "{json}");
    assert!(json.contains("\"crosscheck\""), "{json}");
}

#[test]
fn rules_section_reports_attribution_for_both_kernel_engines() {
    // Enumeration kernel.
    let metrics = Arc::new(Metrics::new());
    let opts = EnumOptions::new(3)
        .exact()
        .sink(sink_of(&metrics))
        .rule_stats(true);
    let r = enumerate(&protocols::illinois(), &opts);
    let doc = Json::parse(&metrics.snapshot().to_json().render()).unwrap();
    let rules = doc.get("rules").expect("rules section");
    match rules {
        Json::Obj(entries) => {
            assert!(!entries.is_empty());
            let firings: u64 = entries
                .iter()
                .map(|(_, v)| v.get("firings").and_then(Json::as_u64).unwrap())
                .sum();
            let states: u64 = entries
                .iter()
                .map(|(_, v)| v.get("states").and_then(Json::as_u64).unwrap())
                .sum();
            assert_eq!(
                Some(firings),
                doc.get("counters")
                    .and_then(|c| c.get("rule_firings"))
                    .and_then(Json::as_u64)
            );
            assert_eq!(states, r.visits as u64);
        }
        other => panic!("rules should be an object, got {other:?}"),
    }

    // Symbolic expansion: same schema, firings equal to the paper's 22
    // visits for Illinois.
    let metrics = Arc::new(Metrics::new());
    let report = Session::new(protocols::illinois())
        .options(ccv_core::Options::default().rule_stats(true))
        .sink(sink_of(&metrics))
        .verify();
    assert_eq!(report.visits(), 22);
    let doc = Json::parse(&metrics.snapshot().to_json().render()).unwrap();
    let rules = doc.get("rules").expect("rules section");
    match rules {
        Json::Obj(entries) => {
            let firings: u64 = entries
                .iter()
                .map(|(_, v)| v.get("firings").and_then(Json::as_u64).unwrap())
                .sum();
            assert_eq!(firings, 22);
        }
        other => panic!("rules should be an object, got {other:?}"),
    }
}

#[test]
fn rules_section_is_absent_without_opt_in() {
    let metrics = Arc::new(Metrics::new());
    let opts = EnumOptions::new(3).sink(sink_of(&metrics));
    enumerate(&protocols::illinois(), &opts);
    let doc = Json::parse(&metrics.snapshot().to_json().render()).unwrap();
    assert!(doc.get("rules").is_none());
}
